//! Runs the full experiment suite, regenerating every table and figure
//! in the paper's evaluation section. Writes TSV data under `results/`
//! and a combined summary to `results/summary.txt`.
//!
//! The whole suite's single-core jobs are planned up front and submitted
//! to the shared runner as one deduplicated batch, so they spread across
//! `BV_JOBS` worker threads (default: all cores); the figure functions
//! then assemble their tables from the result store. Set
//! `BV_JOURNAL=<dir>` to checkpoint each run and resume an interrupted
//! suite.

use std::io::Write as _;

type FigureFn = fn(&bv_bench::Ctx) -> String;

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = bv_bench::Ctx::new();
    let plan = bv_bench::figures::plan_suite(&ctx);
    println!(
        "planned {} jobs ({} unique, {} resumed from journal, {} simulated) in {:.0}s on {} worker(s)",
        plan.requested,
        plan.unique,
        plan.from_journal,
        plan.simulated,
        t0.elapsed().as_secs_f32(),
        ctx.runner.workers()
    );
    let mut summary = String::new();
    let figures: &[(&str, FigureFn)] = &[
        ("table1", bv_bench::figures::table1),
        ("area", bv_bench::figures::area),
        ("compressibility", bv_bench::figures::compressibility),
        ("fig8", bv_bench::figures::fig8),
        ("fig6", bv_bench::figures::fig6),
        ("fig7", bv_bench::figures::fig7),
        ("fig9", bv_bench::figures::fig9),
        ("fig10", bv_bench::figures::fig10),
        ("fig11", bv_bench::figures::fig11),
        ("fig12", bv_bench::figures::fig12),
        ("sens_associativity", bv_bench::figures::sens_associativity),
        ("sens_victim_policy", bv_bench::figures::sens_victim_policy),
        (
            "ablation_compressor",
            bv_bench::figures::ablation_compressor,
        ),
        ("ablation_inclusion", bv_bench::figures::ablation_inclusion),
        ("ablation_prefetch", bv_bench::figures::ablation_prefetch),
        ("future_work_camp", bv_bench::figures::future_work_camp),
        ("fig13", bv_bench::figures::fig13),
        ("fig14", bv_bench::figures::fig14),
    ];
    for (name, f) in figures {
        let t = std::time::Instant::now();
        let s = f(&ctx);
        println!("{s}[{name} done in {:.0}s]\n", t.elapsed().as_secs_f32());
        summary.push_str(&s);
        summary.push('\n');
    }
    let path = ctx.results_dir().join("summary.txt");
    let mut f = std::fs::File::create(&path).expect("create summary");
    f.write_all(summary.as_bytes()).expect("write summary");
    println!(
        "full suite finished in {:.0}s; summary at {}",
        t0.elapsed().as_secs_f32(),
        path.display()
    );
}
