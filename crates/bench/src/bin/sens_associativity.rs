//! Runner for the `sens_associativity` experiment (see bv_bench::figures::sens_associativity).
fn main() {
    let mut ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::sens_associativity(&mut ctx));
}
