//! Runner for the `sens_associativity` experiment (see bv_bench::figures::sens_associativity).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::sens_associativity(&ctx));
}
