//! Runner for the `future_work_camp` experiment (paper §VII.C).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::future_work_camp(&ctx));
}
