//! Runner for the `fig7` experiment (see bv_bench::figures::fig7).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig7(&ctx));
}
