//! Runner for the `ablation_compressor` experiment (see bv_bench::figures::ablation_compressor).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::ablation_compressor(&ctx));
}
