//! Experiment harness shared by the per-figure runner binaries.
//!
//! Every table and figure in the paper's evaluation (Section VI) has a
//! binary under `src/bin/` that calls into this library; the `experiments`
//! binary runs the whole suite with a shared run cache so the uncompressed
//! baseline is simulated once, not once per figure. Results are written as
//! TSV files under `results/` and summarized on stdout.
//!
//! Run length is controlled by environment variables so the same binaries
//! serve quick smoke tests and full reproductions:
//!
//! * `BV_WARMUP` — warmup instructions per run (default 1,000,000)
//! * `BV_INSTS` — measured instructions per run (default 1,500,000)
//! * `BV_MP_WARMUP` / `BV_MP_INSTS` — per-thread budgets for the
//!   multi-program mixes (defaults 500,000 / 800,000)

use bv_cache::PolicyKind;
use bv_sim::report::geomean;
use bv_sim::{LlcKind, MulticoreResult, MulticoreSystem, RunResult, SimConfig, System};
use bv_trace::{TraceRegistry, TraceSpec, WorkloadCategory};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

/// Simulation budgets, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Warmup instructions per single-core run.
    pub warmup: u64,
    /// Measured instructions per single-core run.
    pub insts: u64,
    /// Per-thread warmup instructions for multi-program runs.
    pub mp_warmup: u64,
    /// Per-thread measured instructions for multi-program runs.
    pub mp_insts: u64,
}

impl Budget {
    /// Reads the budget from `BV_*` environment variables.
    #[must_use]
    pub fn from_env() -> Budget {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Budget {
            warmup: get("BV_WARMUP", 1_000_000),
            insts: get("BV_INSTS", 1_500_000),
            mp_warmup: get("BV_MP_WARMUP", 500_000),
            mp_insts: get("BV_MP_INSTS", 800_000),
        }
    }
}

/// A hashable key identifying one simulated configuration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConfigKey {
    /// Organization name.
    pub kind: String,
    /// LLC capacity in bytes.
    pub llc_bytes: usize,
    /// LLC ways.
    pub llc_ways: usize,
    /// Replacement policy name.
    pub policy: &'static str,
    /// Prefetch degree.
    pub prefetch_degree: u32,
}

fn key_of(cfg: &SimConfig) -> ConfigKey {
    ConfigKey {
        kind: format!("{:?}", cfg.llc_kind),
        llc_bytes: cfg.llc.size_bytes(),
        llc_ways: cfg.llc.ways(),
        policy: cfg.llc_policy.name(),
        prefetch_degree: cfg.prefetch_degree,
    }
}

/// The experiment context: registry, budget, and the shared run cache.
pub struct Ctx {
    /// The 100-trace registry.
    pub registry: TraceRegistry,
    /// Simulation budgets.
    pub budget: Budget,
    cache: HashMap<(String, ConfigKey), RunResult>,
    results_dir: PathBuf,
}

impl Ctx {
    /// Creates a context with an explicit budget (used by smoke tests).
    #[must_use]
    pub fn with_budget(budget: Budget) -> Ctx {
        let mut ctx = Ctx::new();
        ctx.budget = budget;
        ctx
    }

    /// Creates a context; results are written under `<repo>/results/`.
    #[must_use]
    pub fn new() -> Ctx {
        let results_dir =
            PathBuf::from(std::env::var("BV_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
        std::fs::create_dir_all(&results_dir).expect("create results dir");
        Ctx {
            registry: TraceRegistry::paper_default(),
            budget: Budget::from_env(),
            cache: HashMap::new(),
            results_dir,
        }
    }

    /// Runs (or fetches from cache) one trace under one configuration.
    pub fn run(&mut self, trace: &TraceSpec, cfg: SimConfig) -> RunResult {
        let key = (trace.name.clone(), key_of(&cfg));
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let result = System::new(cfg).run_with_warmup(
            &trace.workload,
            self.budget.warmup,
            self.budget.insts,
        );
        self.cache.insert(key, result.clone());
        result
    }

    /// Runs a 4-way mix under one configuration (not cached — each mix is
    /// used once per configuration).
    #[must_use]
    pub fn run_mix(&self, members: &[&TraceSpec; 4], cfg: SimConfig) -> MulticoreResult {
        let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
        // The multicore driver measures from cold caches; the warmup bias
        // is shared by every configuration and cancels in the weighted
        // speedup ratios.
        MulticoreSystem::new(cfg).run(&workloads, self.budget.mp_warmup + self.budget.mp_insts)
    }

    /// Writes a TSV result file and returns its path.
    pub fn write_tsv(&self, name: &str, header: &str, rows: &[Vec<String>]) -> PathBuf {
        let path = self.results_dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create tsv");
        writeln!(f, "{header}").expect("write header");
        for row in rows {
            writeln!(f, "{}", row.join("\t")).expect("write row");
        }
        path
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// One trace's ratios against the uncompressed baseline.
#[derive(Clone, Debug)]
pub struct TraceRatios {
    /// Trace name.
    pub name: String,
    /// Category.
    pub category: WorkloadCategory,
    /// Compression-friendly classification.
    pub friendly: bool,
    /// IPC ratio vs baseline (>1 = speedup).
    pub ipc_ratio: f64,
    /// DRAM read ratio vs baseline (<1 = fewer reads).
    pub read_ratio: f64,
    /// Mean compressed size fraction observed at the LLC.
    pub comp_ratio: f64,
}

/// Sweeps the cache-sensitive traces under `cfg`, normalizing each to the
/// 2 MB uncompressed baseline.
pub fn sensitive_sweep(ctx: &mut Ctx, cfg: SimConfig) -> Vec<TraceRatios> {
    sweep(
        ctx,
        cfg,
        SimConfig::single_thread(LlcKind::Uncompressed),
        false,
    )
}

/// Sweeps with an explicit baseline configuration.
pub fn sweep(
    ctx: &mut Ctx,
    cfg: SimConfig,
    baseline: SimConfig,
    all_traces: bool,
) -> Vec<TraceRatios> {
    let traces: Vec<TraceSpec> = if all_traces {
        ctx.registry.all().cloned().collect()
    } else {
        ctx.registry.cache_sensitive().cloned().collect()
    };
    let mut out = Vec::with_capacity(traces.len());
    for t in &traces {
        let base = ctx.run(t, baseline);
        let run = ctx.run(t, cfg);
        out.push(TraceRatios {
            name: t.name.clone(),
            category: t.category,
            friendly: t.compression_friendly,
            ipc_ratio: run.ipc_ratio(&base),
            read_ratio: run.dram_read_ratio(&base),
            comp_ratio: run.compression.mean_ratio(),
        });
    }
    out
}

/// Geometric-mean IPC gain (percent) over a set of ratios.
#[must_use = "the formatted gain should be reported"]
pub fn gain_pct<'a, I: IntoIterator<Item = &'a TraceRatios>>(rows: I) -> f64 {
    (geomean(rows.into_iter().map(|r| r.ipc_ratio)) - 1.0) * 100.0
}

/// Geometric-mean DRAM read ratio over a set of ratios.
#[must_use]
pub fn read_ratio<'a, I: IntoIterator<Item = &'a TraceRatios>>(rows: I) -> f64 {
    geomean(rows.into_iter().map(|r| r.read_ratio))
}

/// Formats the per-category table used by Figures 9-11: gains for
/// compression-friendly traces and for all sensitive traces, per category
/// and overall.
#[must_use]
pub fn category_table(rows: &[TraceRatios]) -> String {
    let mut s = String::new();
    s.push_str("category      friendly-gain%  overall-gain%\n");
    for cat in WorkloadCategory::ALL {
        let friendly = rows.iter().filter(|r| r.category == cat && r.friendly);
        let all = rows.iter().filter(|r| r.category == cat);
        s.push_str(&format!(
            "{:12}  {:>13.2}  {:>12.2}\n",
            cat.name(),
            gain_pct(friendly),
            gain_pct(all)
        ));
    }
    s.push_str(&format!(
        "{:12}  {:>13.2}  {:>12.2}\n",
        "Average",
        gain_pct(rows.iter().filter(|r| r.friendly)),
        gain_pct(rows.iter())
    ));
    s
}

/// Writes a line-graph TSV (trace, ipc ratio, read ratio), sorted the way
/// the paper draws its line plots (by IPC ratio, descending).
pub fn write_line_graph(ctx: &Ctx, file: &str, rows: &[TraceRatios]) -> PathBuf {
    let mut sorted: Vec<&TraceRatios> = rows.iter().collect();
    sorted.sort_by(|a, b| b.ipc_ratio.total_cmp(&a.ipc_ratio));
    let table: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}", r.ipc_ratio),
                format!("{:.4}", r.read_ratio),
                format!("{:.3}", r.comp_ratio),
            ]
        })
        .collect();
    ctx.write_tsv(
        file,
        "trace\tipc_ratio\tdram_read_ratio\tcomp_ratio",
        &table,
    )
}

/// Counts traces losing performance (IPC ratio < threshold).
#[must_use]
pub fn losers(rows: &[TraceRatios], threshold: f64) -> usize {
    rows.iter().filter(|r| r.ipc_ratio < threshold).count()
}

/// The standard experiment configurations.
pub mod configs {
    use super::*;

    /// 2 MB uncompressed baseline.
    #[must_use]
    pub fn base2mb() -> SimConfig {
        SimConfig::single_thread(LlcKind::Uncompressed)
    }

    /// 2 MB Base-Victim.
    #[must_use]
    pub fn bv2mb() -> SimConfig {
        SimConfig::single_thread(LlcKind::BaseVictim)
    }

    /// 3 MB (2 MB + 8 ways) uncompressed, +1 cycle.
    #[must_use]
    pub fn unc3mb() -> SimConfig {
        base2mb().with_llc_size(3 * 1024 * 1024, 24)
    }

    /// Applies a replacement policy to a configuration.
    #[must_use]
    pub fn with_policy(cfg: SimConfig, policy: PolicyKind) -> SimConfig {
        cfg.with_policy(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults() {
        let b = Budget::from_env();
        assert!(b.warmup > 0 && b.insts > 0);
    }

    #[test]
    fn config_keys_distinguish_sizes_and_kinds() {
        let a = key_of(&configs::base2mb());
        let b = key_of(&configs::unc3mb());
        let c = key_of(&configs::bv2mb());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, key_of(&configs::base2mb()));
    }

    #[test]
    fn gain_pct_of_unit_ratios_is_zero() {
        let rows = vec![TraceRatios {
            name: "t".into(),
            category: WorkloadCategory::SpecFp,
            friendly: true,
            ipc_ratio: 1.0,
            read_ratio: 1.0,
            comp_ratio: 0.5,
        }];
        assert!(gain_pct(&rows).abs() < 1e-12);
        assert_eq!(losers(&rows, 0.999), 0);
        assert!((read_ratio(&rows) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_table_lists_all_categories() {
        let rows = vec![TraceRatios {
            name: "t".into(),
            category: WorkloadCategory::Client,
            friendly: true,
            ipc_ratio: 1.1,
            read_ratio: 0.9,
            comp_ratio: 0.5,
        }];
        let table = category_table(&rows);
        for cat in WorkloadCategory::ALL {
            assert!(table.contains(cat.name()));
        }
        assert!(table.contains("Average"));
    }
}

pub mod figures;
