//! Experiment harness shared by the per-figure runner binaries.
//!
//! Every table and figure in the paper's evaluation (Section VI) has a
//! binary under `src/bin/` that calls into this library; the `experiments`
//! binary runs the whole suite with a shared run cache so the uncompressed
//! baseline is simulated once, not once per figure. Results are written as
//! TSV files under `results/` and summarized on stdout.
//!
//! Run length is controlled by environment variables so the same binaries
//! serve quick smoke tests and full reproductions:
//!
//! * `BV_WARMUP` — warmup instructions per run (default 1,000,000)
//! * `BV_INSTS` — measured instructions per run (default 1,500,000)
//! * `BV_MP_WARMUP` / `BV_MP_INSTS` — per-thread budgets for the
//!   multi-program mixes (defaults 500,000 / 800,000)
//!
//! Execution is delegated to [`bv_runner`]: each figure plans its job
//! list up front and submits it to a shared [`Runner`], which
//! deduplicates, runs the remainder across `BV_JOBS` worker threads
//! (default: all cores), and keeps every result for later figures.
//! Setting `BV_JOURNAL=<dir>` additionally checkpoints each completed
//! run on disk and resumes an interrupted sweep from those checkpoints.

use bv_cache::PolicyKind;
use bv_runner::{ExecutionReport, JobSpec, Runner};
use bv_sim::report::geomean;
use bv_sim::{LlcKind, MulticoreResult, MulticoreSystem, RunResult, SimConfig};
use bv_trace::{TraceRegistry, TraceSpec, WorkloadCategory};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Simulation budgets, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Warmup instructions per single-core run.
    pub warmup: u64,
    /// Measured instructions per single-core run.
    pub insts: u64,
    /// Per-thread warmup instructions for multi-program runs.
    pub mp_warmup: u64,
    /// Per-thread measured instructions for multi-program runs.
    pub mp_insts: u64,
}

impl Budget {
    /// Reads the budget from `BV_*` environment variables.
    #[must_use]
    pub fn from_env() -> Budget {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Budget {
            warmup: get("BV_WARMUP", 1_000_000),
            insts: get("BV_INSTS", 1_500_000),
            mp_warmup: get("BV_MP_WARMUP", 500_000),
            mp_insts: get("BV_MP_INSTS", 800_000),
        }
    }
}

/// The experiment context: registry, budget, and the shared runner that
/// executes planned jobs in parallel and retains their results.
pub struct Ctx {
    /// The 100-trace registry.
    pub registry: TraceRegistry,
    /// Simulation budgets.
    pub budget: Budget,
    /// The orchestrator: deduplicating planner, worker pool, result
    /// store, and (when `BV_JOURNAL` is set) the checkpoint journal.
    pub runner: Runner,
    results_dir: PathBuf,
}

impl Ctx {
    /// Creates a context with an explicit budget (used by smoke tests).
    #[must_use]
    pub fn with_budget(budget: Budget) -> Ctx {
        let mut ctx = Ctx::new();
        ctx.budget = budget;
        ctx
    }

    /// Creates a context; results are written under `<repo>/results/`.
    /// Worker count comes from `BV_JOBS` (default: all cores); setting
    /// `BV_JOURNAL=<dir>` enables checkpoint/resume under that directory.
    ///
    /// # Panics
    ///
    /// Panics if the results or journal directory cannot be created.
    #[must_use]
    pub fn new() -> Ctx {
        let runner = Runner::new(bv_runner::pool::default_workers());
        Ctx::with_runner(runner)
    }

    /// Creates a context around an explicitly configured runner (the
    /// `bvsim sweep` subcommand builds one from its CLI flags).
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created.
    #[must_use]
    pub fn with_runner(mut runner: Runner) -> Ctx {
        let results_dir =
            PathBuf::from(std::env::var("BV_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
        std::fs::create_dir_all(&results_dir).expect("create results dir");
        if runner.journal().is_none() {
            if let Ok(dir) = std::env::var("BV_JOURNAL") {
                runner = runner
                    .with_journal(dir, true)
                    .expect("open BV_JOURNAL directory");
            }
        }
        Ctx {
            registry: TraceRegistry::paper_default(),
            budget: Budget::from_env(),
            runner,
            results_dir,
        }
    }

    /// The job for one trace under one configuration at this context's
    /// single-core budget.
    #[must_use]
    pub fn job(&self, trace: &str, cfg: SimConfig) -> JobSpec {
        JobSpec::new(trace, cfg, self.budget.warmup, self.budget.insts)
    }

    /// Plans and executes a batch of jobs on the runner (deduplicating,
    /// resuming from the journal where possible, simulating the rest in
    /// parallel). Afterwards every job's result is available via
    /// [`Ctx::run`] or [`Runner::get`] without further simulation.
    pub fn plan(&self, jobs: &[JobSpec]) -> ExecutionReport {
        self.runner.execute(&self.registry, jobs)
    }

    /// Runs (or fetches from the runner's store) one trace under one
    /// configuration.
    #[must_use]
    pub fn run(&self, trace: &TraceSpec, cfg: SimConfig) -> RunResult {
        self.runner
            .run_one(&self.registry, &self.job(&trace.name, cfg))
    }

    /// Runs a 4-way mix under one configuration (not cached — each mix is
    /// used once per configuration).
    #[must_use]
    pub fn run_mix(&self, members: &[&TraceSpec; 4], cfg: SimConfig) -> MulticoreResult {
        let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
        // The multicore driver measures from cold caches; the warmup bias
        // is shared by every configuration and cancels in the weighted
        // speedup ratios.
        MulticoreSystem::new(cfg).run(&workloads, self.budget.mp_warmup + self.budget.mp_insts)
    }

    /// The directory result files are written to (`BV_RESULTS_DIR`,
    /// default `results`).
    #[must_use]
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }

    /// Writes a TSV result file and returns its path.
    pub fn write_tsv(&self, name: &str, header: &str, rows: &[Vec<String>]) -> PathBuf {
        let path = self.results_dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create tsv");
        writeln!(f, "{header}").expect("write header");
        for row in rows {
            writeln!(f, "{}", row.join("\t")).expect("write row");
        }
        path
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// One trace's ratios against the uncompressed baseline.
#[derive(Clone, Debug)]
pub struct TraceRatios {
    /// Trace name.
    pub name: String,
    /// Category.
    pub category: WorkloadCategory,
    /// Compression-friendly classification.
    pub friendly: bool,
    /// IPC ratio vs baseline (>1 = speedup).
    pub ipc_ratio: f64,
    /// DRAM read ratio vs baseline (<1 = fewer reads).
    pub read_ratio: f64,
    /// Mean compressed size fraction observed at the LLC.
    pub comp_ratio: f64,
}

/// Sweeps the cache-sensitive traces under `cfg`, normalizing each to the
/// 2 MB uncompressed baseline.
pub fn sensitive_sweep(ctx: &Ctx, cfg: SimConfig) -> Vec<TraceRatios> {
    sweep(
        ctx,
        cfg,
        SimConfig::single_thread(LlcKind::Uncompressed),
        false,
    )
}

/// Sweeps with an explicit baseline configuration: the whole job list
/// (every trace under both configurations) is planned up front and
/// submitted to the runner as one batch, then the ratios are assembled
/// from the result store.
pub fn sweep(ctx: &Ctx, cfg: SimConfig, baseline: SimConfig, all_traces: bool) -> Vec<TraceRatios> {
    let traces: Vec<TraceSpec> = if all_traces {
        ctx.registry.all().cloned().collect()
    } else {
        ctx.registry.cache_sensitive().cloned().collect()
    };
    let mut jobs = Vec::with_capacity(traces.len() * 2);
    for t in &traces {
        jobs.push(ctx.job(&t.name, baseline));
        jobs.push(ctx.job(&t.name, cfg));
    }
    ctx.plan(&jobs);
    traces
        .iter()
        .map(|t| {
            let base = ctx.run(t, baseline);
            let run = ctx.run(t, cfg);
            TraceRatios {
                name: t.name.clone(),
                category: t.category,
                friendly: t.compression_friendly,
                ipc_ratio: run.ipc_ratio(&base),
                read_ratio: run.dram_read_ratio(&base),
                comp_ratio: run.compression.mean_ratio(),
            }
        })
        .collect()
}

/// Geometric-mean IPC gain (percent) over a set of ratios.
#[must_use = "the formatted gain should be reported"]
pub fn gain_pct<'a, I: IntoIterator<Item = &'a TraceRatios>>(rows: I) -> f64 {
    (geomean(rows.into_iter().map(|r| r.ipc_ratio)) - 1.0) * 100.0
}

/// Geometric-mean DRAM read ratio over a set of ratios.
#[must_use]
pub fn read_ratio<'a, I: IntoIterator<Item = &'a TraceRatios>>(rows: I) -> f64 {
    geomean(rows.into_iter().map(|r| r.read_ratio))
}

/// Formats the per-category table used by Figures 9-11: gains for
/// compression-friendly traces and for all sensitive traces, per category
/// and overall.
#[must_use]
pub fn category_table(rows: &[TraceRatios]) -> String {
    let mut s = String::new();
    s.push_str("category      friendly-gain%  overall-gain%\n");
    for cat in WorkloadCategory::ALL {
        let friendly = rows.iter().filter(|r| r.category == cat && r.friendly);
        let all = rows.iter().filter(|r| r.category == cat);
        s.push_str(&format!(
            "{:12}  {:>13.2}  {:>12.2}\n",
            cat.name(),
            gain_pct(friendly),
            gain_pct(all)
        ));
    }
    s.push_str(&format!(
        "{:12}  {:>13.2}  {:>12.2}\n",
        "Average",
        gain_pct(rows.iter().filter(|r| r.friendly)),
        gain_pct(rows.iter())
    ));
    s
}

/// Writes a line-graph TSV (trace, ipc ratio, read ratio), sorted the way
/// the paper draws its line plots (by IPC ratio, descending).
pub fn write_line_graph(ctx: &Ctx, file: &str, rows: &[TraceRatios]) -> PathBuf {
    let mut sorted: Vec<&TraceRatios> = rows.iter().collect();
    sorted.sort_by(|a, b| b.ipc_ratio.total_cmp(&a.ipc_ratio));
    let table: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}", r.ipc_ratio),
                format!("{:.4}", r.read_ratio),
                format!("{:.3}", r.comp_ratio),
            ]
        })
        .collect();
    ctx.write_tsv(
        file,
        "trace\tipc_ratio\tdram_read_ratio\tcomp_ratio",
        &table,
    )
}

/// Counts traces losing performance (IPC ratio < threshold).
#[must_use]
pub fn losers(rows: &[TraceRatios], threshold: f64) -> usize {
    rows.iter().filter(|r| r.ipc_ratio < threshold).count()
}

/// The standard experiment configurations.
pub mod configs {
    use super::*;

    /// 2 MB uncompressed baseline.
    #[must_use]
    pub fn base2mb() -> SimConfig {
        SimConfig::single_thread(LlcKind::Uncompressed)
    }

    /// 2 MB Base-Victim.
    #[must_use]
    pub fn bv2mb() -> SimConfig {
        SimConfig::single_thread(LlcKind::BaseVictim)
    }

    /// 3 MB (2 MB + 8 ways) uncompressed, +1 cycle.
    #[must_use]
    pub fn unc3mb() -> SimConfig {
        base2mb().with_llc_size(3 * 1024 * 1024, 24)
    }

    /// Applies a replacement policy to a configuration.
    #[must_use]
    pub fn with_policy(cfg: SimConfig, policy: PolicyKind) -> SimConfig {
        cfg.with_policy(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults() {
        let b = Budget::from_env();
        assert!(b.warmup > 0 && b.insts > 0);
    }

    #[test]
    fn job_keys_distinguish_sizes_and_kinds() {
        let budget = Budget {
            warmup: 1,
            insts: 2,
            mp_warmup: 1,
            mp_insts: 2,
        };
        let job = |cfg| JobSpec::new("t", cfg, budget.warmup, budget.insts);
        let a = job(configs::base2mb());
        let b = job(configs::unc3mb());
        let c = job(configs::bv2mb());
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        assert_eq!(a.stable_hash(), job(configs::base2mb()).stable_hash());
    }

    #[test]
    fn gain_pct_of_unit_ratios_is_zero() {
        let rows = vec![TraceRatios {
            name: "t".into(),
            category: WorkloadCategory::SpecFp,
            friendly: true,
            ipc_ratio: 1.0,
            read_ratio: 1.0,
            comp_ratio: 0.5,
        }];
        assert!(gain_pct(&rows).abs() < 1e-12);
        assert_eq!(losers(&rows, 0.999), 0);
        assert!((read_ratio(&rows) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_table_lists_all_categories() {
        let rows = vec![TraceRatios {
            name: "t".into(),
            category: WorkloadCategory::Client,
            friendly: true,
            ipc_ratio: 1.1,
            read_ratio: 0.9,
            comp_ratio: 0.5,
        }];
        let table = category_table(&rows);
        for cat in WorkloadCategory::ALL {
            assert!(table.contains(cat.name()));
        }
        assert!(table.contains("Average"));
    }
}

pub mod figures;
pub mod perf;
