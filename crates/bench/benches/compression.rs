//! Micro-benchmarks for the compression algorithms: the
//! compress/decompress costs that Section V charges as 2 decompression
//! cycles and Section VI.D as codec energy.

use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc};
use bv_testkit::bench::time;
use bv_trace::DataProfile;
use std::hint::black_box;

fn lines_for(profile: DataProfile, n: u64) -> Vec<CacheLine> {
    (0..n).map(|i| profile.synthesize(i * 131, 0)).collect()
}

fn bench_compress() {
    let lines = lines_for(DataProfile::PointerLike, 256);
    for (name, comp) in [
        ("bdi", Box::new(Bdi::new()) as Box<dyn Compressor>),
        ("fpc", Box::new(Fpc::new())),
        ("cpack", Box::new(CPack::new())),
    ] {
        time("compress_64B_line", name, 20, || {
            for line in &lines {
                black_box(comp.compressed_size(line));
            }
        });
    }
}

fn bench_decompress() {
    let bdi = Bdi::new();
    for profile in [
        DataProfile::PointerLike,
        DataProfile::FloatLike,
        DataProfile::Zero,
    ] {
        let compressed: Vec<_> = lines_for(profile, 64)
            .iter()
            .map(|l| bdi.compress(l))
            .collect();
        time(
            "decompress_64B_line",
            &format!("bdi_{profile:?}"),
            20,
            || {
                for c in &compressed {
                    black_box(bdi.decompress(c));
                }
            },
        );
    }
}

fn main() {
    bench_compress();
    bench_decompress();
}
