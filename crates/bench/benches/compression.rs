//! Criterion micro-benchmarks for the compression algorithms: the
//! compress/decompress costs that Section V charges as 2 decompression
//! cycles and Section VI.D as codec energy.

use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc};
use bv_trace::DataProfile;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn lines_for(profile: DataProfile, n: u64) -> Vec<CacheLine> {
    (0..n).map(|i| profile.synthesize(i * 131, 0)).collect()
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_64B_line");
    group.sample_size(20);
    let lines = lines_for(DataProfile::PointerLike, 256);
    for (name, comp) in [
        ("bdi", Box::new(Bdi::new()) as Box<dyn Compressor>),
        ("fpc", Box::new(Fpc::new())),
        ("cpack", Box::new(CPack::new())),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % lines.len();
                black_box(comp.compressed_size(&lines[i]))
            });
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress_64B_line");
    group.sample_size(20);
    let bdi = Bdi::new();
    for profile in [
        DataProfile::PointerLike,
        DataProfile::FloatLike,
        DataProfile::Zero,
    ] {
        let compressed: Vec<_> = lines_for(profile, 64)
            .iter()
            .map(|l| bdi.compress(l))
            .collect();
        group.bench_function(format!("bdi_{profile:?}"), |b| {
            let mut i = 0;
            b.iter_batched(
                || {
                    i = (i + 1) % compressed.len();
                    &compressed[i]
                },
                |c| black_box(bdi.decompress(c)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
