//! Criterion benchmarks comparing the per-access cost of each LLC
//! organization model (the machinery behind Figures 6-8): uncompressed,
//! naive two-tag, ECM two-tag, Base-Victim, and functional VSC.

use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
use bv_core::{
    BaseVictimLlc, LlcOrganization, NoInner, TwoTagEcmLlc, TwoTagLlc, UncompressedLlc,
    VictimPolicyKind, VscLlc,
};
use bv_trace::DataProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A deterministic mixed-compressibility access pattern over ~2x the
/// cache's line count, so fills, evictions, victim insertions, and
/// promotions all occur.
fn drive(org: &mut dyn LlcOrganization, accesses: u64) -> u64 {
    let mut inner = NoInner;
    let mut hits = 0;
    let lines = (org.geometry().size_bytes() / 64) as u64 * 2;
    for i in 0..accesses {
        let a = (i * 0x9e37_79b9) % lines;
        let addr = LineAddr::new(a);
        if org.read(addr, &mut inner).is_hit() {
            hits += 1;
        } else {
            let profile = if a.is_multiple_of(3) {
                DataProfile::PointerLike
            } else if a % 3 == 1 {
                DataProfile::WideInt
            } else {
                DataProfile::Random
            };
            org.fill(addr, profile.synthesize(a, 0), &mut inner);
        }
    }
    hits
}

fn bench_organizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("llc_access");
    group.sample_size(10);
    let geom = CacheGeometry::new(256 * 1024, 16, 64); // scaled-down LLC
    let accesses = 50_000;

    group.bench_function("uncompressed", |b| {
        b.iter(|| {
            let mut org = UncompressedLlc::new(geom, PolicyKind::Nru);
            black_box(drive(&mut org, accesses))
        });
    });
    group.bench_function("two_tag", |b| {
        b.iter(|| {
            let mut org = TwoTagLlc::new(geom, PolicyKind::Nru);
            black_box(drive(&mut org, accesses))
        });
    });
    group.bench_function("two_tag_ecm", |b| {
        b.iter(|| {
            let mut org = TwoTagEcmLlc::new(geom, PolicyKind::Nru);
            black_box(drive(&mut org, accesses))
        });
    });
    group.bench_function("base_victim", |b| {
        b.iter(|| {
            let mut org =
                BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
            black_box(drive(&mut org, accesses))
        });
    });
    group.bench_function("vsc_2x", |b| {
        b.iter(|| {
            let mut org = VscLlc::new(geom, PolicyKind::Lru);
            black_box(drive(&mut org, accesses))
        });
    });
    group.finish();
}

fn bench_victim_policies(c: &mut Criterion) {
    // Section VI.B.4's variants have identical hit rates to first order;
    // this measures their selection cost.
    let mut group = c.benchmark_group("victim_policy");
    group.sample_size(10);
    let geom = CacheGeometry::new(256 * 1024, 16, 64);
    for vp in VictimPolicyKind::ALL {
        group.bench_function(vp.name(), |b| {
            b.iter(|| {
                let mut org = BaseVictimLlc::new(geom, PolicyKind::Nru, vp);
                black_box(drive(&mut org, 30_000))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_organizations, bench_victim_policies);
criterion_main!(benches);
