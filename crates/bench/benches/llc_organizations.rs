//! Benchmarks comparing the per-access cost of each LLC organization
//! model (the machinery behind Figures 6-8): uncompressed, naive two-tag,
//! ECM two-tag, Base-Victim, and functional VSC.

use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
use bv_core::{
    BaseVictimLlc, LlcOrganization, NoInner, TwoTagEcmLlc, TwoTagLlc, UncompressedLlc,
    VictimPolicyKind, VscLlc,
};
use bv_testkit::bench::time;
use bv_trace::DataProfile;
use std::hint::black_box;

/// A deterministic mixed-compressibility access pattern over ~2x the
/// cache's line count, so fills, evictions, victim insertions, and
/// promotions all occur.
fn drive(org: &mut dyn LlcOrganization, accesses: u64) -> u64 {
    let mut inner = NoInner;
    let mut hits = 0;
    let lines = (org.geometry().size_bytes() / 64) as u64 * 2;
    for i in 0..accesses {
        let a = (i * 0x9e37_79b9) % lines;
        let addr = LineAddr::new(a);
        if org.read(addr, &mut inner).is_hit() {
            hits += 1;
        } else {
            let profile = if a.is_multiple_of(3) {
                DataProfile::PointerLike
            } else if a % 3 == 1 {
                DataProfile::WideInt
            } else {
                DataProfile::Random
            };
            org.fill(addr, profile.synthesize(a, 0), &mut inner);
        }
    }
    hits
}

fn bench_organizations() {
    let geom = CacheGeometry::new(256 * 1024, 16, 64); // scaled-down LLC
    let accesses = 50_000;

    time("llc_access", "uncompressed", 10, || {
        let mut org = UncompressedLlc::new(geom, PolicyKind::Nru);
        black_box(drive(&mut org, accesses))
    });
    time("llc_access", "two_tag", 10, || {
        let mut org = TwoTagLlc::new(geom, PolicyKind::Nru);
        black_box(drive(&mut org, accesses))
    });
    time("llc_access", "two_tag_ecm", 10, || {
        let mut org = TwoTagEcmLlc::new(geom, PolicyKind::Nru);
        black_box(drive(&mut org, accesses))
    });
    time("llc_access", "base_victim", 10, || {
        let mut org = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
        black_box(drive(&mut org, accesses))
    });
    time("llc_access", "vsc_2x", 10, || {
        let mut org = VscLlc::new(geom, PolicyKind::Lru);
        black_box(drive(&mut org, accesses))
    });
}

fn bench_victim_policies() {
    // Section VI.B.4's variants have identical hit rates to first order;
    // this measures their selection cost.
    let geom = CacheGeometry::new(256 * 1024, 16, 64);
    for vp in VictimPolicyKind::ALL {
        time("victim_policy", vp.name(), 10, || {
            let mut org = BaseVictimLlc::new(geom, PolicyKind::Nru, vp);
            black_box(drive(&mut org, 30_000))
        });
    }
}

fn main() {
    bench_organizations();
    bench_victim_policies();
}
