//! Criterion benchmarks of full-system simulation throughput — the cost
//! of regenerating each figure's data points. One benchmark per
//! experiment family, on scaled-down instruction budgets.

use bv_sim::{LlcKind, SimConfig, System};
use bv_trace::TraceRegistry;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const INSTS: u64 = 150_000;

fn bench_figures(c: &mut Criterion) {
    let registry = TraceRegistry::paper_default();
    let trace = registry
        .get("specint.mcf.07")
        .expect("trace")
        .workload
        .clone();

    let mut group = c.benchmark_group("simulate_150k_insts");
    group.sample_size(10);
    for (name, kind) in [
        ("fig6_two_tag", LlcKind::TwoTag),
        ("fig7_two_tag_ecm", LlcKind::TwoTagEcm),
        ("fig8_base_victim", LlcKind::BaseVictim),
        ("baseline_uncompressed", LlcKind::Uncompressed),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(System::new(SimConfig::single_thread(kind)).run(&trace, INSTS)));
        });
    }
    // Figure 11's large-cache configuration.
    group.bench_function("fig11_4mb", |b| {
        let cfg =
            SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(4 * 1024 * 1024, 16);
        b.iter(|| black_box(System::new(cfg).run(&trace, INSTS)));
    });
    group.finish();
}

fn bench_multiprogram(c: &mut Criterion) {
    use bv_sim::MulticoreSystem;
    use bv_trace::mix::paper_mixes;
    let registry = TraceRegistry::paper_default();
    let mixes = paper_mixes(&registry);
    let members = mixes[0].resolve(&registry);
    let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();

    let mut group = c.benchmark_group("fig13_multiprogram");
    group.sample_size(10);
    group.bench_function("4thread_50k_each", |b| {
        b.iter(|| {
            black_box(
                MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim))
                    .run(&workloads, 50_000),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_multiprogram);
criterion_main!(benches);
