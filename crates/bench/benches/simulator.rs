//! Benchmarks of full-system simulation throughput — the cost of
//! regenerating each figure's data points. One benchmark per experiment
//! family, on scaled-down instruction budgets.

use bv_sim::{LlcKind, SimConfig, System};
use bv_testkit::bench::time;
use bv_trace::TraceRegistry;
use std::hint::black_box;

const INSTS: u64 = 150_000;

fn bench_figures() {
    let registry = TraceRegistry::paper_default();
    let trace = registry
        .get("specint.mcf.07")
        .expect("trace")
        .workload
        .clone();

    for (name, kind) in [
        ("fig6_two_tag", LlcKind::TwoTag),
        ("fig7_two_tag_ecm", LlcKind::TwoTagEcm),
        ("fig8_base_victim", LlcKind::BaseVictim),
        ("baseline_uncompressed", LlcKind::Uncompressed),
    ] {
        time("simulate_150k_insts", name, 10, || {
            black_box(System::new(SimConfig::single_thread(kind)).run(&trace, INSTS))
        });
    }
    // Figure 11's large-cache configuration.
    let cfg = SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(4 * 1024 * 1024, 16);
    time("simulate_150k_insts", "fig11_4mb", 10, || {
        black_box(System::new(cfg).run(&trace, INSTS))
    });
}

fn bench_multiprogram() {
    use bv_sim::MulticoreSystem;
    use bv_trace::mix::paper_mixes;
    let registry = TraceRegistry::paper_default();
    let mixes = paper_mixes(&registry);
    let members = mixes[0].resolve(&registry);
    let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();

    time("fig13_multiprogram", "4thread_50k_each", 10, || {
        black_box(
            MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim))
                .run(&workloads, 50_000),
        )
    });
}

fn main() {
    bench_figures();
    bench_multiprogram();
}
