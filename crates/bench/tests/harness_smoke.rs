//! Smoke tests for the experiment harness: every figure function runs at
//! a tiny budget, produces its summary text, and writes its TSV.

use bv_bench::{figures, Budget, Ctx};

fn tiny_ctx() -> Ctx {
    Ctx::with_budget(Budget {
        warmup: 20_000,
        insts: 20_000,
        mp_warmup: 5_000,
        mp_insts: 10_000,
    })
}

#[test]
fn analytic_figures_run() {
    let ctx = tiny_ctx();
    let t1 = figures::table1(&ctx);
    assert!(t1.contains("SPECFP") && t1.contains("100 traces"));
    let area = figures::area(&ctx);
    assert!(area.contains("8.5%"));
}

#[test]
fn fig8_runs_and_reports_the_guarantee() {
    let ctx = tiny_ctx();
    let s = figures::fig8(&ctx);
    assert!(s.contains("overall IPC gain"));
    assert!(s.contains("max DRAM read ratio"));
    // Even at a tiny budget, the guarantee metric must never exceed 1.
    let line = s
        .lines()
        .find(|l| l.contains("max DRAM read ratio"))
        .expect("metric line");
    let value: f64 = line
        .split(':')
        .nth(1)
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("parsable ratio");
    assert!(value <= 1.0, "guarantee violated: {value}");
}

#[test]
fn sensitivity_figures_run() {
    let ctx = tiny_ctx();
    let s = figures::sens_victim_policy(&ctx);
    assert!(s.contains("ecm-largest-base"));
    let s = figures::compressibility(&ctx);
    assert!(s.contains("VSC-2X"));
}

#[test]
fn run_cache_deduplicates() {
    let ctx = tiny_ctx();
    // Running fig8 twice should reuse every run from the cache (same
    // output both times, and much faster the second time — we only check
    // equality, which would fail if cached results were inconsistent).
    let a = figures::fig8(&ctx);
    let b = figures::fig8(&ctx);
    assert_eq!(a, b);
}
