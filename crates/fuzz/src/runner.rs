//! The fuzz campaign loop: generate, check, and (on failure) shrink,
//! with progress counters suitable for telemetry sinks.

use crate::case::{Domain, FuzzCase};
use crate::check::{observe, verdict, FuzzFailure};
use crate::shrink::{shrink, ShrinkOutcome};
use bv_telemetry::CounterRegistry;
use bv_testkit::Rng;

/// Campaign parameters (the `bvsim fuzz` flags).
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Cases to run.
    pub cases: u64,
    /// Master seed; per-case seeds derive from it.
    pub seed: u64,
    /// Restrict to one domain (`None` = alternate over both).
    pub domain: Option<Domain>,
    /// Minimize the first failure before reporting it.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 100,
            seed: 1,
            domain: None,
            shrink: true,
        }
    }
}

/// The first failing case of a campaign, with its minimized form.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    /// 0-based index of the failing case.
    pub case_index: u64,
    /// The per-case seed (replays via `FuzzCase::generate`).
    pub case_seed: u64,
    /// Which property tripped (or `inject-undetected`).
    pub failure: FuzzFailure,
    /// The case exactly as generated.
    pub original: FuzzCase,
    /// The shrunk reproducer, when shrinking was enabled and applicable.
    pub shrunk: Option<ShrinkOutcome>,
}

/// What a campaign did.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases completed (stops at the first failure).
    pub cases_run: u64,
    /// Progress counters: `fuzz.cases`, `fuzz.llc_cases`,
    /// `fuzz.kv_cases`, `fuzz.ops_replayed`, `fuzz.failures`,
    /// `fuzz.shrink_attempts`, `fuzz.shrink_accepted`.
    pub counters: CounterRegistry,
    /// The first failure, or `None` when every case passed.
    pub failure: Option<CampaignFailure>,
}

impl FuzzReport {
    /// True when every case passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the campaign, invoking `progress(done, total)` after each case.
/// Stops at (and minimizes) the first failure.
pub fn run_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(u64, u64)) -> FuzzReport {
    let mut counters = CounterRegistry::new();
    let c_cases = counters.register("fuzz.cases");
    let c_llc = counters.register("fuzz.llc_cases");
    let c_kv = counters.register("fuzz.kv_cases");
    let c_ops = counters.register("fuzz.ops_replayed");
    let c_fail = counters.register("fuzz.failures");
    let c_attempts = counters.register("fuzz.shrink_attempts");
    let c_accepted = counters.register("fuzz.shrink_accepted");

    let mut seeds = Rng::new(cfg.seed);
    let mut failure = None;
    let mut cases_run = 0;
    for i in 0..cfg.cases {
        let case_seed = seeds.next_u64();
        let case = FuzzCase::generate(case_seed, cfg.domain);
        counters.add(c_cases, 1);
        counters.add(
            match case.domain() {
                Domain::Llc => c_llc,
                Domain::Kv => c_kv,
            },
            1,
        );
        counters.add(c_ops, case.op_count());
        let result = verdict(&case);
        cases_run += 1;
        progress(cases_run, cfg.cases);
        if let Err(f) = result {
            counters.add(c_fail, 1);
            // Shrinking minimizes against the observation; an
            // `inject-undetected` failure has nothing to observe, so it
            // is reported as-is.
            let shrunk = if cfg.shrink && observe(&case).is_some() {
                let out = shrink(&case);
                counters.add(c_attempts, out.attempts);
                counters.add(c_accepted, out.accepted);
                Some(out)
            } else {
                None
            };
            failure = Some(CampaignFailure {
                case_index: i,
                case_seed,
                failure: f,
                original: case,
                shrunk,
            });
            break;
        }
    }
    FuzzReport {
        cases_run,
        counters,
        failure,
    }
}

/// One domain's `--inject` self-test result.
#[derive(Clone, Debug)]
pub struct InjectReport {
    /// Domain exercised.
    pub domain: Domain,
    /// Injected cases tried before one surfaced.
    pub tried: u64,
    /// The seed whose injected fault was detected (`None` = auditor
    /// blind, a hard failure).
    pub detected_seed: Option<u64>,
    /// Op count of the detected case before shrinking.
    pub original_ops: u64,
    /// The minimized reproducer.
    pub shrunk: Option<ShrinkOutcome>,
}

impl InjectReport {
    /// The self-test passes when a fault was detected and its
    /// reproducer shrank to at most `bound` ops.
    #[must_use]
    pub fn passed(&self, bound: u64) -> bool {
        self.detected_seed.is_some()
            && self
                .shrunk
                .as_ref()
                .is_some_and(|s| s.case.op_count() <= bound)
    }
}

/// How many seeds the self-test scans per domain before declaring the
/// auditor blind. Detection is immediate for kv; for the LLC the
/// replacement-state perturbation needs eviction pressure, which not
/// every random stream supplies under every policy.
pub const INJECT_SCAN_LIMIT: u64 = 32;

/// Runs the injection self-test for each selected domain: generate
/// injected cases until one is detected, then shrink it.
#[must_use]
pub fn run_inject_selftest(cfg: &FuzzConfig) -> Vec<InjectReport> {
    let domains: &[Domain] = match cfg.domain {
        Some(Domain::Llc) => &[Domain::Llc],
        Some(Domain::Kv) => &[Domain::Kv],
        None => &[Domain::Llc, Domain::Kv],
    };
    domains
        .iter()
        .map(|&domain| {
            let mut seeds = Rng::new(cfg.seed);
            let mut tried = 0;
            let mut found = None;
            while tried < INJECT_SCAN_LIMIT && found.is_none() {
                let seed = seeds.next_u64();
                tried += 1;
                let case = FuzzCase::generate(seed, Some(domain)).with_injection();
                if observe(&case).is_some() {
                    found = Some((seed, case));
                }
            }
            match found {
                Some((seed, case)) => InjectReport {
                    domain,
                    tried,
                    detected_seed: Some(seed),
                    original_ops: case.op_count(),
                    shrunk: Some(shrink(&case)),
                },
                None => InjectReport {
                    domain,
                    tried,
                    detected_seed: None,
                    original_ops: 0,
                    shrunk: None,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaigns_pass_and_count() {
        let cfg = FuzzConfig {
            cases: 8,
            seed: 1,
            domain: None,
            shrink: true,
        };
        let mut ticks = 0;
        let report = run_fuzz(&cfg, |done, total| {
            assert_eq!(total, 8);
            ticks = done;
        });
        assert!(report.passed(), "{:?}", report.failure.map(|f| f.failure));
        assert_eq!(report.cases_run, 8);
        assert_eq!(ticks, 8);
        assert_eq!(report.counters.get("fuzz.cases"), Some(8));
        let llc = report.counters.get("fuzz.llc_cases").unwrap();
        let kv = report.counters.get("fuzz.kv_cases").unwrap();
        assert_eq!(llc + kv, 8);
        assert!(report.counters.get("fuzz.ops_replayed").unwrap() > 0);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = FuzzConfig {
            cases: 4,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, |_, _| {});
        let b = run_fuzz(&cfg, |_, _| {});
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.cases_run, b.cases_run);
    }

    #[test]
    fn inject_selftest_detects_and_shrinks_both_domains() {
        let reports = run_inject_selftest(&FuzzConfig::default());
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert!(
                r.detected_seed.is_some(),
                "{}: auditor blind after {} seeds",
                r.domain.name(),
                r.tried
            );
            assert!(
                r.passed(64),
                "{}: reproducer did not shrink to <= 64 ops (got {:?})",
                r.domain.name(),
                r.shrunk.as_ref().map(|s| s.case.op_count())
            );
        }
    }
}
