//! Greedy delta-debugging: minimize a tripping case while it keeps
//! tripping the same property.
//!
//! The loop is classic ddmin-lite, specialized per domain:
//!
//! 1. **Truncate** — binary-search the shortest op/request prefix that
//!    still trips (divergence detection is effectively monotone in the
//!    prefix length, so this alone usually cuts 10-100x).
//! 2. **Cut chunks** — remove halves, then quarters, then single ops
//!    from the middle of an LLC stream.
//! 3. **Simplify** — drop clients, flatten the Zipf skew, collapse the
//!    value mixture to one entry, shrink the geometry, canonicalize the
//!    policies, and re-seed the kv stream toward seed 1.
//! 4. Repeat until a full round adopts nothing.
//!
//! Every candidate is re-validated against [`observe`]: a reduction is
//! adopted only when the *same property* still trips, so a mirror
//! divergence never silently shrinks into an unrelated stats mismatch.

use crate::case::{CaseBody, FuzzCase};
use crate::check::observe;
use bv_cache::PolicyKind;
use bv_core::VictimPolicyKind;

/// What a shrink run did.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized case (equal to the input when nothing trips or
    /// nothing could be removed).
    pub case: FuzzCase,
    /// Candidate evaluations performed.
    pub attempts: u64,
    /// Reductions adopted.
    pub accepted: u64,
}

/// Evaluation budget: plenty for ≤ 4096-op cases, a hard stop for
/// pathological ones.
const MAX_ATTEMPTS: u64 = 4096;

/// Minimizes `case` against the property it currently trips. Returns
/// the input unchanged when no property trips.
#[must_use]
pub fn shrink(case: &FuzzCase) -> ShrinkOutcome {
    let Some(target) = observe(case).map(|f| f.property) else {
        return ShrinkOutcome {
            case: case.clone(),
            attempts: 0,
            accepted: 0,
        };
    };
    let mut s = Shrinker {
        current: case.clone(),
        target,
        attempts: 0,
        accepted: 0,
    };
    loop {
        let before = s.accepted;
        s.truncate();
        s.cut_chunks();
        s.simplify();
        if s.accepted == before || s.attempts >= MAX_ATTEMPTS {
            break;
        }
    }
    ShrinkOutcome {
        case: s.current,
        attempts: s.attempts,
        accepted: s.accepted,
    }
}

struct Shrinker {
    current: FuzzCase,
    target: &'static str,
    attempts: u64,
    accepted: u64,
}

impl Shrinker {
    /// Adopts `candidate` if the target property still trips on it.
    fn try_adopt(&mut self, candidate: FuzzCase) -> bool {
        if candidate == self.current || self.attempts >= MAX_ATTEMPTS {
            return false;
        }
        self.attempts += 1;
        if observe(&candidate).is_some_and(|f| f.property == self.target) {
            self.current = candidate;
            self.accepted += 1;
            true
        } else {
            false
        }
    }

    /// A copy of the current case truncated to its first `len` ops,
    /// with `inject_at` clamped inside the shortened stream.
    fn truncated(&self, len: u64) -> FuzzCase {
        let mut c = self.current.clone();
        match &mut c.body {
            CaseBody::Llc(l) => l.ops.truncate(len as usize),
            CaseBody::Kv(k) => k.requests = k.requests.min(len),
        }
        if let Some(at) = c.inject_at {
            c.inject_at = Some(at.min(len.saturating_sub(1)));
        }
        c
    }

    /// Binary-searches the shortest tripping prefix.
    fn truncate(&mut self) {
        let (mut lo, mut hi) = (1u64, self.current.op_count());
        while lo < hi && self.attempts < MAX_ATTEMPTS {
            let mid = lo + (hi - lo) / 2;
            if self.try_adopt(self.truncated(mid)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
    }

    /// ddmin-lite chunk removal over an LLC op stream (kv streams are
    /// seed-generated, so truncation is their only cut).
    fn cut_chunks(&mut self) {
        loop {
            let CaseBody::Llc(l) = &self.current.body else {
                return;
            };
            let n = l.ops.len();
            if n < 2 {
                return;
            }
            let mut chunk = n / 2;
            let mut adopted = false;
            while chunk >= 1 && self.attempts < MAX_ATTEMPTS {
                let mut start = 0;
                while start < self.op_len() {
                    let mut c = self.current.clone();
                    let CaseBody::Llc(ref mut lc) = c.body else {
                        unreachable!()
                    };
                    let end = (start + chunk).min(lc.ops.len());
                    lc.ops.drain(start..end);
                    if let (Some(at), len) = (c.inject_at, lc.ops.len() as u64) {
                        c.inject_at = Some(at.min(len.saturating_sub(1)));
                    }
                    if self.try_adopt(c) {
                        adopted = true;
                        // Re-scan the same start: the next chunk slid in.
                    } else {
                        start += chunk;
                    }
                    if self.attempts >= MAX_ATTEMPTS {
                        break;
                    }
                }
                chunk /= 2;
            }
            if !adopted {
                return;
            }
        }
    }

    fn op_len(&self) -> usize {
        match &self.current.body {
            CaseBody::Llc(l) => l.ops.len(),
            CaseBody::Kv(k) => k.requests as usize,
        }
    }

    /// Structural simplifications, each adopted independently.
    fn simplify(&mut self) {
        // Pull the injection point toward the front (smaller prefixes
        // then become reachable on the next truncation round).
        if let Some(at) = self.current.inject_at {
            for smaller in [0, 1, 2, at / 4, at / 2] {
                if smaller < at {
                    let mut c = self.current.clone();
                    c.inject_at = Some(smaller);
                    if self.try_adopt(c) {
                        break;
                    }
                }
            }
        }
        match self.current.body.clone() {
            CaseBody::Llc(l) => {
                if l.palette.len() > 1 {
                    let mut c = self.current.clone();
                    if let CaseBody::Llc(ref mut lc) = c.body {
                        lc.palette = vec![l.palette[0]];
                    }
                    self.try_adopt(c);
                }
                for case in [
                    self.with_llc(|lc| lc.sets = 4),
                    self.with_llc(|lc| lc.ways = 2),
                    self.with_llc(|lc| lc.policy = PolicyKind::Lru),
                    self.with_llc(|lc| lc.victim = VictimPolicyKind::EcmLargestBase),
                ] {
                    self.try_adopt(case);
                }
            }
            CaseBody::Kv(k) => {
                for case in [
                    self.with_kv(|kc| kc.profile.clients = 1),
                    self.with_kv(|kc| kc.profile.phase_requests = 0),
                    self.with_kv(|kc| kc.profile.skew = 0.0),
                    self.with_kv(|kc| kc.profile.get_ratio = 1.0),
                    self.with_kv(|kc| kc.profile.size_buckets.truncate(1)),
                    self.with_kv(|kc| kc.profile.value_mix.truncate(1)),
                    self.with_kv(|kc| kc.profile.keys = (k.profile.keys / 2).max(1)),
                    self.with_kv(|kc| kc.budget = (kc.budget / 2).max(4096)),
                    self.with_kv(|kc| kc.stream_seed = 1),
                ] {
                    self.try_adopt(case);
                }
            }
        }
    }

    fn with_llc(&self, edit: impl FnOnce(&mut crate::case::LlcCase)) -> FuzzCase {
        let mut c = self.current.clone();
        if let CaseBody::Llc(ref mut lc) = c.body {
            edit(lc);
        }
        c
    }

    fn with_kv(&self, edit: impl FnOnce(&mut crate::case::KvCase)) -> FuzzCase {
        let mut c = self.current.clone();
        if let CaseBody::Kv(ref mut kc) = c.body {
            edit(kc);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Domain;
    use crate::check::verdict;

    #[test]
    fn clean_cases_shrink_to_themselves() {
        let case = FuzzCase::generate(2, Some(Domain::Kv));
        let out = shrink(&case);
        assert_eq!(out.case, case);
        assert_eq!(out.accepted, 0);
    }

    #[test]
    fn injected_kv_case_shrinks_to_a_tiny_reproducer() {
        let case = FuzzCase::generate(1, Some(Domain::Kv)).with_injection();
        assert!(observe(&case).is_some(), "fault must be detected first");
        let out = shrink(&case);
        assert!(
            out.case.op_count() <= 64,
            "shrunk to {} ops (from {})",
            out.case.op_count(),
            case.op_count()
        );
        assert!(out.accepted > 0);
        // The minimized case still detects the fault and still passes
        // the injected-case verdict.
        assert!(observe(&out.case).is_some());
        assert!(verdict(&out.case).is_ok());
    }

    #[test]
    fn injected_llc_case_shrinks_to_a_tiny_reproducer() {
        // Pick a seed whose injection demonstrably surfaces.
        let case = (0..10u64)
            .map(|s| FuzzCase::generate(s, Some(Domain::Llc)).with_injection())
            .find(|c| observe(c).is_some())
            .expect("some seed must surface the injected fault");
        let out = shrink(&case);
        assert!(
            out.case.op_count() <= 64,
            "shrunk to {} ops (from {})",
            out.case.op_count(),
            case.op_count()
        );
        assert!(observe(&out.case).is_some());
    }
}
