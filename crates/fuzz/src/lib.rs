//! Adversarial workload fuzzing for the Base-Victim guarantees.
//!
//! The paper's headline claim — the Baseline area bit-mirrors an
//! uncompressed cache, so compression can only ever *add* hits — is
//! checked elsewhere on curated traces and preset kv profiles. This
//! crate hunts for inputs that break it: deterministic random workloads
//! (Zipf skew, client interleavings, diurnal phases, value-size and
//! compressibility mixtures) sharpened by adversarial mutators
//! (hot-set flips, budget-boundary value sizes, incompressible bursts,
//! set-aliasing address patterns), each replayed through the
//! baseline-divergence auditor, the organization zoo's stats-identity
//! check, and the kv lockstep auditor.
//!
//! The pipeline is **generator → auditor → shrinker**:
//!
//! * [`FuzzCase::generate`] materializes a workload as a pure function
//!   of one SplitMix64 seed (see [`case`]).
//! * [`check::verdict`] replays it against every property, honoring the
//!   `--inject` convention: injected cases pass when the fault is
//!   *detected* (see [`check`]).
//! * [`shrink::shrink`] delta-debugs a tripping case down to a minimal
//!   reproducer (see [`mod@shrink`]), which [`corpus`] serializes as a
//!   committable `.bvfuzz.json` file for `tests/corpus/`.
//! * [`runner::run_fuzz`] ties it together as the `bvsim fuzz`
//!   campaign, with progress counters for telemetry.
//!
//! Everything is seed-deterministic end to end: a failing case is fully
//! described by `(master seed, case index)` even before the reproducer
//! file is written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod check;
pub mod corpus;
pub mod runner;
pub mod shrink;

pub use case::{CaseBody, Domain, FuzzCase, KvCase, LlcCase};
pub use check::{observe, verdict, FuzzFailure, LLC_KINDS};
pub use corpus::{from_json, load, save, to_json, EXTENSION, SCHEMA};
pub use runner::{
    run_fuzz, run_inject_selftest, CampaignFailure, FuzzConfig, FuzzReport, InjectReport,
};
pub use shrink::{shrink, ShrinkOutcome};
