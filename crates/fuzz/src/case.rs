//! The fuzz case model and its seed-driven generator.
//!
//! A [`FuzzCase`] is a fully materialized adversarial workload for one
//! property domain: either an explicit LLC operation stream driven
//! through the baseline-divergence auditor and the organization zoo, or
//! a kv request-traffic shape driven through the lockstep auditor and
//! the three kv organizations. Everything in a case is a pure function
//! of the generation seed, so a failing seed *is* a reproducer; the
//! materialized form exists so the shrinker can edit it piecewise.

use bv_cache::{CacheGeometry, PolicyKind};
use bv_compress::CacheLine;
use bv_core::audit::AuditOp;
use bv_core::VictimPolicyKind;
use bv_testkit::{mix, Rng};
use bv_trace::request::RequestProfile;
use bv_trace::DataProfile;

/// Which property family a case exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Hardware LLC: baseline-mirror audit plus stats identity across
    /// the organization zoo.
    Llc,
    /// Software kv tier: lockstep mirror plus budget and determinism.
    Kv,
}

impl Domain {
    /// Stable name (the corpus `domain` field and CLI flag).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Domain::Llc => "llc",
            Domain::Kv => "kv",
        }
    }

    /// Inverse of [`Domain::name`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<Domain> {
        match s {
            "llc" => Some(Domain::Llc),
            "kv" => Some(Domain::Kv),
            _ => None,
        }
    }
}

/// An LLC case: a small geometry, a policy pair, a data palette, and an
/// explicit operation stream.
#[derive(Clone, Debug, PartialEq)]
pub struct LlcCase {
    /// Sets in the toy geometry (small, so divergence surfaces fast).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Baseline replacement policy for both lockstep sides.
    pub policy: PolicyKind,
    /// Victim-cache allocation policy for the Base-Victim side.
    pub victim: VictimPolicyKind,
    /// Data palette: a line address's bytes come from
    /// `palette[mix(addr) % len]`, so compressibility is address-stable.
    pub palette: Vec<DataProfile>,
    /// The operation stream, explicit so the shrinker can cut it.
    pub ops: Vec<AuditOp>,
}

impl LlcCase {
    /// The case's cache geometry (64 B lines).
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.sets * self.ways * 64, self.ways, 64)
    }

    /// Address-stable line contents drawn from the palette.
    #[must_use]
    pub fn data_for(&self, addr: u64) -> CacheLine {
        let profile = self.palette[(mix(addr) as usize) % self.palette.len()];
        profile.synthesize(addr, 0)
    }
}

/// A kv case: a request-traffic shape plus replay parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct KvCase {
    /// The traffic shape (always named `"fuzz"`).
    pub profile: RequestProfile,
    /// Tier byte budget shared by every organization under test.
    pub budget: u64,
    /// Requests to replay.
    pub requests: u64,
    /// Request-stream seed (independent of the generation seed so the
    /// shrinker can re-seed toward a canonical stream).
    pub stream_seed: u64,
}

/// The domain-specific body of a case.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseBody {
    /// See [`LlcCase`].
    Llc(LlcCase),
    /// See [`KvCase`].
    Kv(KvCase),
}

/// One adversarial workload, ready to check, shrink, or serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// The generation seed this case was derived from (kept through
    /// shrinking for provenance).
    pub seed: u64,
    /// The workload itself.
    pub body: CaseBody,
    /// If set, a synthetic fault is injected after this many operations
    /// (LLC: extra baseline reads; kv: a baseline recency perturbation).
    /// An injected case *passes* when the fault is detected — the
    /// `--inject` self-test convention.
    pub inject_at: Option<u64>,
}

impl FuzzCase {
    /// The case's domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        match self.body {
            CaseBody::Llc(_) => Domain::Llc,
            CaseBody::Kv(_) => Domain::Kv,
        }
    }

    /// How many operations the case replays — the size the shrinker
    /// minimizes and the acceptance bound for `--inject` reproducers.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        match &self.body {
            CaseBody::Llc(c) => c.ops.len() as u64,
            CaseBody::Kv(c) => c.requests,
        }
    }

    /// Generates the case for a seed, optionally pinned to one domain.
    /// Pure: the same `(seed, domain)` always yields the same case.
    #[must_use]
    pub fn generate(seed: u64, domain: Option<Domain>) -> FuzzCase {
        let mut rng = Rng::new(seed);
        let picked = domain.unwrap_or(if rng.flip() { Domain::Llc } else { Domain::Kv });
        let body = match picked {
            Domain::Llc => CaseBody::Llc(generate_llc(&mut rng)),
            Domain::Kv => CaseBody::Kv(generate_kv(&mut rng)),
        };
        FuzzCase {
            seed,
            body,
            inject_at: None,
        }
    }

    /// Arms the case's synthetic fault at the stream midpoint, turning
    /// it into a detection self-test (the fuzz twin of `--inject` on
    /// `bvsim trace` / `bvsim kv`).
    #[must_use]
    pub fn with_injection(mut self) -> FuzzCase {
        self.inject_at = Some((self.op_count() / 2).max(1));
        self
    }
}

/// How one contiguous run of LLC addresses is laid out.
#[derive(Clone, Copy)]
enum AddressPattern {
    /// A small hot set hammered repeatedly.
    HotSet { base: u64, span: u64 },
    /// A sequential sweep (streaming, evicts everything).
    Scan { start: u64 },
    /// Set-aliasing: every address lands in the same set.
    Alias { base: u64, sets: u64 },
    /// Uniform over a wide span.
    Uniform { span: u64 },
}

fn generate_llc(rng: &mut Rng) -> LlcCase {
    let sets = *rng.choose(&[4usize, 8, 16]);
    let ways = *rng.choose(&[2usize, 4, 8]);
    let policy = *rng.choose(&PolicyKind::ALL);
    let victim = *rng.choose(&VictimPolicyKind::ALL);

    // Palette: 1-4 profiles; one case in four is an incompressible
    // burst (all-Random values starve the victim area of slack).
    let palette = if rng.below(4) == 0 {
        vec![DataProfile::Random]
    } else {
        let n = 1 + rng.index(4);
        rng.vec_of(n, |r| *r.choose(&DataProfile::ALL))
    };

    let capacity = (sets * ways) as u64;
    let total_ops = 256 + rng.below(1792) as usize;
    let mut ops = Vec::with_capacity(total_ops);
    let mut hot_base = rng.below(capacity * 8);
    while ops.len() < total_ops {
        // Hot-set flips: each segment may relocate the hot region.
        if rng.below(3) == 0 {
            hot_base = rng.below(capacity * 8);
        }
        let pattern = match rng.below(4) {
            0 => AddressPattern::HotSet {
                base: hot_base,
                span: 1 + rng.below(capacity / 2 + 1),
            },
            1 => AddressPattern::Scan {
                start: rng.below(capacity * 4),
            },
            2 => AddressPattern::Alias {
                base: rng.below(sets as u64),
                sets: sets as u64,
            },
            _ => AddressPattern::Uniform {
                span: capacity * (2 + rng.below(6)),
            },
        };
        let seg_len = (8 + rng.below(64) as usize).min(total_ops - ops.len());
        for i in 0..seg_len {
            let a = match pattern {
                AddressPattern::HotSet { base, span } => base + rng.below(span),
                AddressPattern::Scan { start } => start + i as u64,
                AddressPattern::Alias { base, sets } => base + rng.below(4 * 8) * sets,
                AddressPattern::Uniform { span } => rng.below(span),
            };
            ops.push(match rng.below(10) {
                0..=6 => AuditOp::Read(a),
                7..=8 => AuditOp::Writeback(a),
                _ => AuditOp::Prefetch(a),
            });
        }
    }

    LlcCase {
        sets,
        ways,
        policy,
        victim,
        palette,
        ops,
    }
}

fn generate_kv(rng: &mut Rng) -> KvCase {
    let budget = 4096 + rng.below(128 * 1024);
    let keys = 8 + rng.below(4096);
    let skew = rng.below(1400) as f64 / 1000.0;
    let get_ratio = (500 + rng.below(500)) as f64 / 1000.0;
    let clients = 1 + rng.below(8) as u32;
    let phase_requests = if rng.flip() { 0 } else { 64 + rng.below(2000) };

    // Size buckets: ordinary object sizes, with one case in four adding
    // a budget-boundary bucket (just-fits / just-misses / bypasses).
    let bucket_count = 1 + rng.index(4);
    let mut size_buckets = rng.vec_of(bucket_count, |r| {
        (64 * (1 + r.below(64)) as u32, 1 + r.below(4) as u32)
    });
    if rng.below(4) == 0 {
        let aligned = ((budget / 64).max(1) * 64) as u32;
        let boundary = *rng.choose(&[
            aligned,
            aligned.saturating_sub(64).max(64),
            aligned / 2,
            aligned + 64,
        ]);
        size_buckets.push((boundary.max(64), 1 + rng.below(4) as u32));
    }

    // Value mix: 1-4 profiles, or an incompressible burst dominated by
    // Random data (one case in four).
    let value_mix = if rng.below(4) == 0 {
        vec![
            (DataProfile::Random, 8),
            (*rng.choose(&DataProfile::ALL), 1),
        ]
    } else {
        {
            let mix_count = 1 + rng.index(4);
            rng.vec_of(mix_count, |r| {
                (*r.choose(&DataProfile::ALL), 1 + r.below(4) as u32)
            })
        }
    };

    KvCase {
        profile: RequestProfile {
            name: "fuzz",
            keys,
            skew,
            get_ratio,
            clients,
            phase_requests,
            size_buckets,
            value_mix,
        },
        budget,
        requests: 256 + rng.below(4096),
        stream_seed: rng.next_u64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50u64 {
            assert_eq!(
                FuzzCase::generate(seed, None),
                FuzzCase::generate(seed, None)
            );
        }
    }

    #[test]
    fn domain_pinning_is_respected() {
        for seed in 0..20u64 {
            assert_eq!(
                FuzzCase::generate(seed, Some(Domain::Llc)).domain(),
                Domain::Llc
            );
            assert_eq!(
                FuzzCase::generate(seed, Some(Domain::Kv)).domain(),
                Domain::Kv
            );
        }
    }

    #[test]
    fn both_domains_appear_without_pinning() {
        let mut llc = 0;
        let mut kv = 0;
        for seed in 0..40u64 {
            match FuzzCase::generate(seed, None).domain() {
                Domain::Llc => llc += 1,
                Domain::Kv => kv += 1,
            }
        }
        assert!(llc > 0 && kv > 0, "llc {llc} kv {kv}");
    }

    #[test]
    fn llc_cases_are_well_formed() {
        for seed in 0..30u64 {
            let case = FuzzCase::generate(seed, Some(Domain::Llc));
            let CaseBody::Llc(c) = &case.body else {
                panic!("pinned llc")
            };
            assert!(!c.ops.is_empty() && c.ops.len() <= 2048);
            assert!(!c.palette.is_empty());
            assert_eq!(c.geometry().sets(), c.sets);
            assert_eq!(c.geometry().ways(), c.ways);
            // Data must be address-stable for size-aware policies.
            assert_eq!(c.data_for(17), c.data_for(17));
        }
    }

    #[test]
    fn kv_cases_are_well_formed() {
        for seed in 0..30u64 {
            let case = FuzzCase::generate(seed, Some(Domain::Kv));
            let CaseBody::Kv(c) = &case.body else {
                panic!("pinned kv")
            };
            assert!(c.requests >= 256);
            assert!(c.profile.keys >= 8);
            assert!(!c.profile.size_buckets.is_empty());
            assert!(!c.profile.value_mix.is_empty());
            assert!(c.profile.size_buckets.iter().all(|&(b, _)| b >= 64));
        }
    }

    #[test]
    fn injection_arms_the_midpoint() {
        let case = FuzzCase::generate(3, Some(Domain::Kv)).with_injection();
        assert_eq!(case.inject_at, Some((case.op_count() / 2).max(1)));
    }
}
