//! `.bvfuzz.json` reproducer files: serialize a [`FuzzCase`] so a
//! fuzz-found counterexample can be committed to `tests/corpus/` and
//! replayed forever.
//!
//! The format is one JSON object built with the workspace's hand-rolled
//! writer (`bv_telemetry::json`) — no external serializer exists in this
//! build environment. Op streams and weight tables use compact
//! space-separated strings (`"r12 w3 p99"`, `"128x4 256x1"`,
//! `"random:8 zero:1"`) so a thousand-op reproducer stays a few KB and
//! diffs legibly.
//!
//! Replay semantics follow the `--inject` convention: a file carrying
//! `inject_at` replays green when the fault **is** detected, so injected
//! self-test reproducers are committable alongside honest divergences.

use crate::case::{CaseBody, Domain, FuzzCase, KvCase, LlcCase};
use bv_cache::PolicyKind;
use bv_core::audit::AuditOp;
use bv_core::VictimPolicyKind;
use bv_telemetry::json::{parse, ObjWriter, Value};
use bv_trace::request::RequestProfile;
use bv_trace::DataProfile;

/// Schema tag every reproducer carries.
pub const SCHEMA: &str = "bvsim-fuzz-v1";

/// Conventional file extension for reproducers.
pub const EXTENSION: &str = "bvfuzz.json";

/// Stable name for a data profile (corpus palettes and value mixes).
#[must_use]
pub fn profile_name(p: DataProfile) -> &'static str {
    match p {
        DataProfile::Zero => "zero",
        DataProfile::Repeated => "repeated",
        DataProfile::PointerLike => "pointer-like",
        DataProfile::SmallInt => "small-int",
        DataProfile::Clustered => "clustered",
        DataProfile::WideInt => "wide-int",
        DataProfile::FloatLike => "float-like",
        DataProfile::Random => "random",
    }
}

/// Inverse of [`profile_name`].
#[must_use]
pub fn profile_from_name(s: &str) -> Option<DataProfile> {
    DataProfile::ALL.into_iter().find(|&p| profile_name(p) == s)
}

/// Renders a case as its committable JSON form.
#[must_use]
pub fn to_json(case: &FuzzCase) -> String {
    let mut w = ObjWriter::new();
    w.str("schema", SCHEMA)
        .u64("seed", case.seed)
        .str("domain", case.domain().name());
    if let Some(at) = case.inject_at {
        w.u64("inject_at", at);
    }
    match &case.body {
        CaseBody::Llc(c) => {
            let palette: Vec<&str> = c.palette.iter().map(|&p| profile_name(p)).collect();
            let ops: Vec<String> = c
                .ops
                .iter()
                .map(|op| match op {
                    AuditOp::Read(a) => format!("r{a}"),
                    AuditOp::Writeback(a) => format!("w{a}"),
                    AuditOp::Prefetch(a) => format!("p{a}"),
                })
                .collect();
            let mut inner = ObjWriter::new();
            inner
                .u64("sets", c.sets as u64)
                .u64("ways", c.ways as u64)
                .str("policy", c.policy.name())
                .str("victim", c.victim.name())
                .str("palette", &palette.join(" "))
                .str("ops", &ops.join(" "));
            w.raw("llc", &inner.finish());
        }
        CaseBody::Kv(c) => {
            let buckets: Vec<String> = c
                .profile
                .size_buckets
                .iter()
                .map(|(b, wt)| format!("{b}x{wt}"))
                .collect();
            let mix: Vec<String> = c
                .profile
                .value_mix
                .iter()
                .map(|(p, wt)| format!("{}:{wt}", profile_name(*p)))
                .collect();
            let mut inner = ObjWriter::new();
            inner
                .u64("keys", c.profile.keys)
                .u64("skew_milli", (c.profile.skew * 1000.0).round() as u64)
                .u64(
                    "get_ratio_milli",
                    (c.profile.get_ratio * 1000.0).round() as u64,
                )
                .u64("clients", u64::from(c.profile.clients))
                .u64("phase_requests", c.profile.phase_requests)
                .str("size_buckets", &buckets.join(" "))
                .str("value_mix", &mix.join(" "))
                .u64("budget", c.budget)
                .u64("requests", c.requests)
                .u64("stream_seed", c.stream_seed);
            w.raw("kv", &inner.finish());
        }
    }
    w.finish()
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Parses a reproducer back into a case.
///
/// # Errors
///
/// Returns a description naming the offending field on any schema
/// mismatch, unknown name, or malformed token.
pub fn from_json(text: &str) -> Result<FuzzCase, String> {
    let v = parse(text)?;
    let schema = req_str(&v, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema `{schema}` (want `{SCHEMA}`)"));
    }
    let seed = req_u64(&v, "seed")?;
    let domain = Domain::from_name(req_str(&v, "domain")?)
        .ok_or_else(|| "field `domain` must be `llc` or `kv`".to_string())?;
    let inject_at = match v.get("inject_at") {
        None => None,
        Some(x) => Some(
            x.as_u64()
                .ok_or_else(|| "field `inject_at` must be an integer".to_string())?,
        ),
    };
    let body = match domain {
        Domain::Llc => {
            let c = v
                .get("llc")
                .ok_or_else(|| "missing object `llc`".to_string())?;
            let policy_name = req_str(c, "policy")?;
            let policy = PolicyKind::ALL
                .into_iter()
                .find(|p| p.name() == policy_name)
                .ok_or_else(|| format!("unknown policy `{policy_name}`"))?;
            let victim_name = req_str(c, "victim")?;
            let victim = VictimPolicyKind::ALL
                .into_iter()
                .find(|p| p.name() == victim_name)
                .ok_or_else(|| format!("unknown victim policy `{victim_name}`"))?;
            let palette = req_str(c, "palette")?
                .split_whitespace()
                .map(|s| profile_from_name(s).ok_or_else(|| format!("unknown profile `{s}`")))
                .collect::<Result<Vec<_>, _>>()?;
            if palette.is_empty() {
                return Err("field `palette` must name at least one profile".to_string());
            }
            let ops = req_str(c, "ops")?
                .split_whitespace()
                .map(|tok| {
                    let addr: u64 = tok[1..]
                        .parse()
                        .map_err(|_| format!("malformed op token `{tok}`"))?;
                    match tok.as_bytes()[0] {
                        b'r' => Ok(AuditOp::Read(addr)),
                        b'w' => Ok(AuditOp::Writeback(addr)),
                        b'p' => Ok(AuditOp::Prefetch(addr)),
                        _ => Err(format!("malformed op token `{tok}`")),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?;
            CaseBody::Llc(LlcCase {
                sets: req_u64(c, "sets")? as usize,
                ways: req_u64(c, "ways")? as usize,
                policy,
                victim,
                palette,
                ops,
            })
        }
        Domain::Kv => {
            let c = v
                .get("kv")
                .ok_or_else(|| "missing object `kv`".to_string())?;
            let size_buckets = req_str(c, "size_buckets")?
                .split_whitespace()
                .map(|tok| {
                    tok.split_once('x')
                        .and_then(|(b, w)| Some((b.parse().ok()?, w.parse().ok()?)))
                        .ok_or_else(|| format!("malformed size bucket `{tok}`"))
                })
                .collect::<Result<Vec<(u32, u32)>, String>>()?;
            let value_mix = req_str(c, "value_mix")?
                .split_whitespace()
                .map(|tok| {
                    tok.split_once(':')
                        .and_then(|(p, w)| Some((profile_from_name(p)?, w.parse().ok()?)))
                        .ok_or_else(|| format!("malformed value-mix entry `{tok}`"))
                })
                .collect::<Result<Vec<(DataProfile, u32)>, String>>()?;
            if size_buckets.is_empty() || value_mix.is_empty() {
                return Err("kv case needs non-empty size_buckets and value_mix".to_string());
            }
            CaseBody::Kv(KvCase {
                profile: RequestProfile {
                    name: "fuzz",
                    keys: req_u64(c, "keys")?.max(1),
                    skew: req_u64(c, "skew_milli")? as f64 / 1000.0,
                    get_ratio: req_u64(c, "get_ratio_milli")? as f64 / 1000.0,
                    clients: req_u64(c, "clients")? as u32,
                    phase_requests: req_u64(c, "phase_requests")?,
                    size_buckets,
                    value_mix,
                },
                budget: req_u64(c, "budget")?,
                requests: req_u64(c, "requests")?,
                stream_seed: req_u64(c, "stream_seed")?,
            })
        }
    };
    Ok(FuzzCase {
        seed,
        body,
        inject_at,
    })
}

/// Reads and parses a reproducer file.
///
/// # Errors
///
/// Prefixes every failure (I/O or parse) with the path.
pub fn load(path: &std::path::Path) -> Result<FuzzCase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes a reproducer file (with a trailing newline, like the goldens).
///
/// # Errors
///
/// Prefixes the I/O failure with the path.
pub fn save(path: &std::path::Path, case: &FuzzCase) -> Result<(), String> {
    std::fs::write(path, format!("{}\n", to_json(case)))
        .map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity_for_both_domains() {
        for seed in 0..20u64 {
            for domain in [Domain::Llc, Domain::Kv] {
                let case = FuzzCase::generate(seed, Some(domain));
                let back = from_json(&to_json(&case)).expect("round trip");
                assert_eq!(back, case, "seed {seed} {}", domain.name());
            }
        }
    }

    #[test]
    fn injection_survives_the_round_trip() {
        let case = FuzzCase::generate(5, Some(Domain::Kv)).with_injection();
        let back = from_json(&to_json(&case)).expect("round trip");
        assert_eq!(back.inject_at, case.inject_at);
    }

    #[test]
    fn parse_errors_name_the_problem() {
        assert!(from_json("{").is_err());
        let wrong_schema = r#"{"schema":"nope","seed":1,"domain":"kv"}"#;
        assert!(from_json(wrong_schema)
            .expect_err("schema")
            .contains("unsupported schema"));
        let bad_domain = format!(r#"{{"schema":"{SCHEMA}","seed":1,"domain":"x"}}"#);
        assert!(from_json(&bad_domain)
            .expect_err("domain")
            .contains("domain"));
        let bad_op = format!(
            r#"{{"schema":"{SCHEMA}","seed":1,"domain":"llc","llc":{{"sets":4,"ways":2,"policy":"lru","victim":"ecm-largest-base","palette":"zero","ops":"q9"}}}}"#
        );
        assert!(from_json(&bad_op)
            .expect_err("op token")
            .contains("malformed op token"));
    }

    #[test]
    fn every_profile_name_round_trips() {
        for p in DataProfile::ALL {
            assert_eq!(profile_from_name(profile_name(p)), Some(p));
        }
    }
}
