//! Property evaluation: replay a case through the auditors and the
//! organization zoo and report the first observed divergence.
//!
//! Two layers, because injection flips the meaning of an observation:
//!
//! * [`observe`] answers "did any property *trip*?" — a divergence, a
//!   budget violation, a stats mismatch — with no judgement attached.
//! * [`verdict`] applies the `--inject` convention: a clean case passes
//!   when nothing trips; an injected case passes when the fault **is**
//!   detected (an undetected injected fault means the auditors are
//!   blind, which is exactly the regression the fuzzer exists to catch).
//!
//! The shrinker minimizes against [`observe`]: whatever tripped must
//! keep tripping as the case gets smaller.

use crate::case::{CaseBody, FuzzCase, KvCase, LlcCase};
use bv_core::audit::{render_divergence, run_audit_ops, AuditConfig, AuditOp};
use bv_core::{LlcOrganization, NoInner};
use bv_events::RingSink;
use bv_kvcache::{run_kv, run_lockstep, KvConfig, KvOrgKind, LockstepConfig};
use bv_sim::LlcKind;

/// The organization cross-section every LLC case replays for stats
/// identity: the same seven kinds the event zero-cost suite pins.
pub const LLC_KINDS: [LlcKind; 7] = [
    LlcKind::Uncompressed,
    LlcKind::TwoTag,
    LlcKind::TwoTagEcm,
    LlcKind::BaseVictim,
    LlcKind::BaseVictimNonInclusive,
    LlcKind::Vsc,
    LlcKind::Dcc,
];

/// One tripped property.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Stable property name (`llc-mirror`, `llc-stats-identity`,
    /// `kv-mirror`, `kv-budget`, `kv-determinism`, `inject-undetected`,
    /// `panic`).
    pub property: &'static str,
    /// Human-readable explanation of what differed.
    pub detail: String,
}

/// Replays every property for the case and returns the first observed
/// trip, or `None` when all properties held. Injection (if armed) is
/// live during the auditor properties; the identity/determinism
/// properties are skipped for injected cases since the fault model only
/// exists inside the auditors.
///
/// A panic anywhere under replay — a violated internal invariant, an
/// overflow, an `expect` on a state the model thought impossible — is
/// caught and reported as the `panic` property, so a crashing case gets
/// minimized and serialized like any other counterexample instead of
/// killing the campaign.
#[must_use]
pub fn observe(case: &FuzzCase) -> Option<FuzzFailure> {
    quiet_catch(|| match &case.body {
        CaseBody::Llc(c) => observe_llc(c, case.inject_at),
        CaseBody::Kv(c) => observe_kv(c, case.inject_at),
    })
}

thread_local! {
    /// True while this thread is inside [`quiet_catch`]; the shared hook
    /// consults it so a caught replay panic prints nothing (the shrinker
    /// re-triggers the same panic hundreds of times) while panics on
    /// every other thread keep their normal report.
    static CATCHING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f`, converting a panic into a [`FuzzFailure`] and suppressing
/// the default panic message for the duration.
fn quiet_catch(f: impl FnOnce() -> Option<FuzzFailure>) -> Option<FuzzFailure> {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CATCHING.with(std::cell::Cell::get) {
                default(info);
            }
        }));
    });
    CATCHING.with(|c| c.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CATCHING.with(|c| c.set(false));
    match result {
        Ok(observed) => observed,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Some(FuzzFailure {
                property: "panic",
                detail: format!("replay panicked: {msg}"),
            })
        }
    }
}

/// Applies the `--inject` pass/fail convention on top of [`observe`].
///
/// # Errors
///
/// A clean case fails with whatever property tripped; an injected case
/// fails with `inject-undetected` when no property tripped.
pub fn verdict(case: &FuzzCase) -> Result<(), FuzzFailure> {
    match (case.inject_at, observe(case)) {
        (_, Some(f)) if case.inject_at.is_none() => Err(f),
        (Some(at), None) => Err(FuzzFailure {
            property: "inject-undetected",
            detail: format!(
                "fault injected after op {at} but no auditor property tripped \
                 ({} case, {} ops)",
                case.domain().name(),
                case.op_count()
            ),
        }),
        _ => Ok(()),
    }
}

fn observe_llc(c: &LlcCase, inject_at: Option<u64>) -> Option<FuzzFailure> {
    let cfg = AuditConfig {
        ops: 0, // ignored: the stream is explicit
        seed: 0,
        context: 8,
        inject_at: inject_at.map(|x| x as usize),
        policy: c.policy,
        victim: c.victim,
    };
    let report = run_audit_ops(c.geometry(), &cfg, &c.ops, |a| c.data_for(a));
    if let Some(d) = report.divergence {
        return Some(FuzzFailure {
            property: "llc-mirror",
            detail: render_divergence(&d),
        });
    }
    if inject_at.is_some() {
        // The injected fault only exists inside the mirror audit; the
        // identity properties below would vacuously pass and are skipped.
        return None;
    }
    stats_identity(c)
}

/// Writeback legality per op under L2 inclusion, replayed once on an
/// uncompressed mirror of the case geometry. The inner level can only
/// write back lines it holds, which inclusion bounds by uncompressed
/// residency — the same model the baseline-divergence auditor uses.
/// Gating every organization on the same mask keeps the streams
/// identical across the zoo and keeps inclusive Base-Victim's "no write
/// hit in the victim area" invariant satisfiable.
fn writeback_legality(c: &LlcCase) -> Vec<bool> {
    let mut mirror = LlcKind::Uncompressed.build(c.geometry(), c.policy);
    let mut inner = NoInner;
    c.ops
        .iter()
        .map(|&op| match op {
            AuditOp::Read(a) => {
                let addr = bv_cache::LineAddr::new(a);
                if !mirror.read(addr, &mut inner).is_hit() {
                    mirror.fill(addr, c.data_for(a), &mut inner);
                }
                true
            }
            AuditOp::Writeback(a) => {
                let addr = bv_cache::LineAddr::new(a);
                let legal = mirror.contains(addr);
                if legal {
                    mirror.writeback(addr, c.data_for(a), &mut inner);
                }
                legal
            }
            AuditOp::Prefetch(a) => {
                let addr = bv_cache::LineAddr::new(a);
                mirror.prefetch_fill(addr, c.data_for(a), &mut inner);
                true
            }
        })
        .collect()
}

/// Drives one organization through the case's op stream.
fn drive(llc: &mut dyn LlcOrganization, c: &LlcCase, legal: &[bool]) -> u64 {
    let mut inner = NoInner;
    let mut events = 0u64;
    for (&op, &ok) in c.ops.iter().zip(legal) {
        match op {
            AuditOp::Read(a) => {
                let addr = bv_cache::LineAddr::new(a);
                if !llc.read(addr, &mut inner).is_hit() {
                    llc.fill(addr, c.data_for(a), &mut inner);
                }
            }
            AuditOp::Writeback(a) => {
                // Legal under inclusion (the mask) *and* resident in this
                // organization: kinds without the mirror guarantee (TwoTag,
                // Vsc, Dcc) may have evicted a line the uncompressed
                // mirror still holds, and writing back a non-resident line
                // is an inclusion violation those organizations reject.
                let addr = bv_cache::LineAddr::new(a);
                if ok && llc.contains(addr) {
                    llc.writeback(addr, c.data_for(a), &mut inner);
                }
            }
            AuditOp::Prefetch(a) => {
                let addr = bv_cache::LineAddr::new(a);
                llc.prefetch_fill(addr, c.data_for(a), &mut inner);
            }
        }
        events += llc.drain_events().len() as u64;
    }
    events
}

fn sorted_lines(llc: &dyn LlcOrganization) -> Vec<u64> {
    let mut v: Vec<u64> = llc.resident_lines().iter().map(|a| a.get()).collect();
    v.sort_unstable();
    v
}

/// Stats identity across the organization zoo: an untraced run, a
/// second untraced run (determinism), and a traced run must agree on
/// every counter and on the resident-line set, and the traced run must
/// actually emit events.
fn stats_identity(c: &LlcCase) -> Option<FuzzFailure> {
    let geom = c.geometry();
    let legal = writeback_legality(c);
    for kind in LLC_KINDS {
        let mut first = kind.build(geom, c.policy);
        let mut again = kind.build(geom, c.policy);
        let mut traced = kind.build_traced(geom, c.policy, RingSink::new(1 << 12));
        drive(first.as_mut(), c, &legal);
        drive(again.as_mut(), c, &legal);
        let events = drive(traced.as_mut(), c, &legal);
        let fail = |what: &str| {
            Some(FuzzFailure {
                property: "llc-stats-identity",
                detail: format!("{}: {what}", kind.name()),
            })
        };
        if first.stats() != again.stats()
            || sorted_lines(first.as_ref()) != sorted_lines(again.as_ref())
        {
            return fail(&format!(
                "two untraced runs disagree: {:?} vs {:?}",
                first.stats(),
                again.stats()
            ));
        }
        if first.stats() != traced.stats()
            || sorted_lines(first.as_ref()) != sorted_lines(traced.as_ref())
        {
            return fail(&format!(
                "traced run diverged from untraced: {:?} vs {:?}",
                traced.stats(),
                first.stats()
            ));
        }
        if events == 0 {
            return fail("traced run emitted no events");
        }
    }
    None
}

fn observe_kv(c: &KvCase, inject_at: Option<u64>) -> Option<FuzzFailure> {
    let report = run_lockstep(&LockstepConfig {
        profile: c.profile.clone(),
        seed: c.stream_seed,
        requests: c.requests,
        budget: c.budget,
        inject_at,
    });
    if let Some(d) = report.divergence {
        return Some(FuzzFailure {
            property: "kv-mirror",
            detail: format!("op {} ({:?}): {}", d.op_index, d.request, d.detail),
        });
    }
    if inject_at.is_some() {
        return None;
    }
    for org in KvOrgKind::ALL {
        let cfg = KvConfig {
            org,
            profile: c.profile.clone(),
            budget: c.budget,
            requests: c.requests,
            warmup: 0,
            seed: c.stream_seed,
        };
        let run = run_kv(&cfg);
        if run.occupancy.resident_bytes > c.budget {
            return Some(FuzzFailure {
                property: "kv-budget",
                detail: format!(
                    "{}: resident {} bytes exceeds budget {}",
                    org.name(),
                    run.occupancy.resident_bytes,
                    c.budget
                ),
            });
        }
        let replay = run_kv(&cfg);
        if run.stats != replay.stats || run.occupancy != replay.occupancy {
            return Some(FuzzFailure {
                property: "kv-determinism",
                detail: format!(
                    "{}: identical configs disagree: {:?} vs {:?}",
                    org.name(),
                    run.stats,
                    replay.stats
                ),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Domain;

    #[test]
    fn clean_generated_cases_pass_both_domains() {
        for seed in 0..6u64 {
            for domain in [Domain::Llc, Domain::Kv] {
                let case = FuzzCase::generate(seed, Some(domain));
                let v = verdict(&case);
                assert!(
                    v.is_ok(),
                    "seed {seed} {}: {:?}",
                    domain.name(),
                    v.err().map(|f| format!("{}: {}", f.property, f.detail))
                );
            }
        }
    }

    #[test]
    fn injected_kv_faults_are_detected() {
        for seed in 0..4u64 {
            let case = FuzzCase::generate(seed, Some(Domain::Kv)).with_injection();
            let obs = observe(&case).expect("kv perturbation must trip the mirror");
            assert_eq!(obs.property, "kv-mirror");
            assert!(verdict(&case).is_ok(), "detected fault must pass verdict");
        }
    }

    #[test]
    fn injected_llc_faults_are_detected() {
        let mut detected = 0;
        for seed in 0..6u64 {
            let case = FuzzCase::generate(seed, Some(Domain::Llc)).with_injection();
            if let Some(obs) = observe(&case) {
                assert_eq!(obs.property, "llc-mirror");
                detected += 1;
            }
        }
        // The replacement-state perturbation needs pressure to surface;
        // most but not necessarily all random streams provide it.
        assert!(detected >= 4, "only {detected}/6 injections surfaced");
    }

    #[test]
    fn replay_panics_become_failures_not_aborts() {
        let f = quiet_catch(|| panic!("boom {}", 7)).expect("panic must surface");
        assert_eq!(f.property, "panic");
        assert!(f.detail.contains("boom 7"), "{}", f.detail);
        assert!(quiet_catch(|| None).is_none(), "clean replay stays clean");
    }

    #[test]
    fn undetected_injection_fails_the_verdict() {
        // An empty-stream injected case can never trip an auditor.
        let mut case = FuzzCase::generate(1, Some(Domain::Kv));
        if let CaseBody::Kv(ref mut c) = case.body {
            c.requests = 0;
        }
        case.inject_at = Some(0);
        let err = verdict(&case).expect_err("nothing to detect");
        assert_eq!(err.property, "inject-undetected");
    }
}
