//! A concrete uncompressed cache, used for the L1 and L2 levels and as the
//! reference model in Base-Victim differential tests.

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;
use crate::replacement::{Policy, PolicyKind, ReplacementPolicy};
use crate::stats::CacheStats;
use bv_compress::CacheLine;

/// A line evicted from a cache, carrying everything the next level needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line's address.
    pub addr: LineAddr,
    /// Whether the line was modified (requires a writeback).
    pub dirty: bool,
    /// The line's data contents.
    pub data: CacheLine,
}

/// An uncompressed set-associative cache with data storage, dirty bits, and
/// a pluggable replacement policy.
///
/// Tags are stored in a structure-of-arrays layout: one contiguous `u64` tag
/// array (sets x ways, row-major) with per-set valid and dirty bitmasks, and
/// the fat `CacheLine` payloads in a parallel array. A set probe is a linear
/// scan of `ways` adjacent tag words rather than a strided walk over slots
/// that each drag a 64-byte data payload through the host cache.
///
/// This type deliberately separates *lookup* ([`probe`](BasicCache::probe),
/// which does not touch replacement state) from *access*
/// ([`read`](BasicCache::read) / [`write`](BasicCache::write), which do),
/// so callers can model tag checks without perturbing recency.
///
/// # Examples
///
/// ```
/// use bv_cache::{BasicCache, CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
///
/// let mut cache = BasicCache::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Lru);
/// let a = LineAddr::new(1);
/// assert!(!cache.read(a));            // miss
/// cache.fill(a, CacheLine::zeroed(), false);
/// assert!(cache.read(a));             // hit
/// assert_eq!(cache.stats().read_misses, 1);
/// assert_eq!(cache.stats().read_hits, 1);
/// ```
#[derive(Debug)]
pub struct BasicCache {
    geom: CacheGeometry,
    /// Tag words, sets x ways row-major. Only meaningful where the set's
    /// valid bit is set; invalid slots keep a zeroed tag so probes may read
    /// every word unconditionally.
    tags: Vec<u64>,
    /// One validity bitmask per set (bit `w` = way `w` holds a line).
    valid: Vec<u64>,
    /// One dirty bitmask per set, parallel to `valid`.
    dirty: Vec<u64>,
    /// Line payloads, parallel to `tags`.
    data: Vec<CacheLine>,
    policy: Policy,
    stats: CacheStats,
}

impl BasicCache {
    /// Creates an empty cache with the given geometry and policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 ways (the per-set validity
    /// mask is a single `u64`).
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: PolicyKind) -> BasicCache {
        let sets = geom.sets();
        let ways = geom.ways();
        assert!(ways <= 64, "cache validity mask covers at most 64 ways");
        BasicCache {
            geom,
            tags: vec![0; sets * ways],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            data: vec![CacheLine::zeroed(); sets * ways],
            policy: policy.instantiate(sets, ways),
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_range(&self, addr: LineAddr) -> (usize, u64) {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        (set, tag)
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geom.ways() + way
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let ways = self.geom.ways();
        let row = &self.tags[set * ways..set * ways + ways];
        let mut matches = 0u64;
        for (w, &t) in row.iter().enumerate() {
            matches |= u64::from(t == tag) << w;
        }
        matches &= self.valid[set];
        if matches == 0 {
            None
        } else {
            Some(matches.trailing_zeros() as usize)
        }
    }

    /// Looks up a line without modifying replacement state or statistics.
    /// Returns the way index on presence.
    #[must_use]
    pub fn probe(&self, addr: LineAddr) -> Option<usize> {
        let (set, tag) = self.set_range(addr);
        self.find(set, tag)
    }

    /// Performs a demand read. Returns `true` on hit (updating recency) and
    /// `false` on miss (the caller is responsible for the fill).
    pub fn read(&mut self, addr: LineAddr) -> bool {
        let (set, tag) = self.set_range(addr);
        match self.find(set, tag) {
            Some(way) => {
                self.policy.on_hit(set, way);
                self.stats.read_hits += 1;
                true
            }
            None => {
                self.policy.on_miss(set);
                self.stats.read_misses += 1;
                false
            }
        }
    }

    /// Performs a demand write. On hit, updates the stored data and marks
    /// the line dirty; on miss returns `false` (write-allocate is the
    /// caller's job).
    pub fn write(&mut self, addr: LineAddr, data: CacheLine) -> bool {
        let (set, tag) = self.set_range(addr);
        match self.find(set, tag) {
            Some(way) => {
                self.policy.on_hit(set, way);
                self.dirty[set] |= 1 << way;
                let idx = self.idx(set, way);
                self.data[idx] = data;
                self.stats.write_hits += 1;
                true
            }
            None => {
                self.policy.on_miss(set);
                self.stats.write_misses += 1;
                false
            }
        }
    }

    /// Looks up a line for a prefetch. Returns `true` on hit. Prefetch hits
    /// do not update recency (a common LLC design choice that keeps
    /// prefetches from polluting replacement state).
    pub fn prefetch_probe(&mut self, addr: LineAddr) -> bool {
        if self.probe(addr).is_some() {
            self.stats.prefetch_hits += 1;
            true
        } else {
            self.stats.prefetch_misses += 1;
            false
        }
    }

    /// Installs a line, evicting if the set is full. Returns the eviction
    /// (if any) so the caller can propagate writebacks or victim-cache
    /// insertions.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (fills must be preceded by a
    /// miss).
    pub fn fill(&mut self, addr: LineAddr, data: CacheLine, dirty: bool) -> Option<Eviction> {
        assert!(
            self.probe(addr).is_none(),
            "fill of already-present line {addr:?}"
        );
        let (set, tag) = self.set_range(addr);
        self.stats.fills += 1;

        let ways = self.geom.ways();
        let ways_mask = if ways == 64 {
            u64::MAX
        } else {
            (1 << ways) - 1
        };
        let free = !self.valid[set] & ways_mask;
        let way = if free != 0 {
            free.trailing_zeros() as usize
        } else {
            self.policy.victim(set)
        };

        let idx = self.idx(set, way);
        let evicted = if self.valid[set] & (1 << way) != 0 {
            Some(Eviction {
                addr: self.line_addr(set, self.tags[idx]),
                dirty: self.dirty[set] & (1 << way) != 0,
                data: self.data[idx],
            })
        } else {
            None
        };
        if let Some(ev) = evicted {
            self.stats.evictions += 1;
            if ev.dirty {
                self.stats.writebacks += 1;
            }
        }

        self.valid[set] |= 1 << way;
        if dirty {
            self.dirty[set] |= 1 << way;
        } else {
            self.dirty[set] &= !(1 << way);
        }
        self.tags[idx] = tag;
        self.data[idx] = data;
        self.policy.on_fill(set, way);
        evicted
    }

    /// Removes a line (back-invalidation from an inclusive outer level).
    /// Returns the eviction record if the line was present, so dirty data
    /// can be forwarded.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Eviction> {
        let (set, tag) = self.set_range(addr);
        let way = self.find(set, tag)?;
        let idx = self.idx(set, way);
        let ev = Eviction {
            addr,
            dirty: self.dirty[set] & (1 << way) != 0,
            data: self.data[idx],
        };
        self.valid[set] &= !(1 << way);
        self.dirty[set] &= !(1 << way);
        self.tags[idx] = 0;
        self.data[idx] = CacheLine::zeroed();
        self.policy.on_invalidate(set, way);
        self.stats.back_invalidations += 1;
        Some(ev)
    }

    /// Reads a resident line's data (does not touch recency).
    #[must_use]
    pub fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        let (set, tag) = self.set_range(addr);
        let way = self.find(set, tag)?;
        Some(self.data[self.idx(set, way)])
    }

    /// Whether a resident line is dirty.
    #[must_use]
    pub fn is_dirty(&self, addr: LineAddr) -> Option<bool> {
        let (set, tag) = self.set_range(addr);
        let way = self.find(set, tag)?;
        Some(self.dirty[set] & (1 << way) != 0)
    }

    /// Iterates over all resident line addresses (for inclusion checks).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let ways = self.geom.ways();
        (0..self.geom.sets()).flat_map(move |set| {
            let mask = self.valid[set];
            (0..ways)
                .filter(move |w| mask & (1 << w) != 0)
                .map(move |w| self.line_addr(set, self.tags[set * ways + w]))
        })
    }

    fn line_addr(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new((tag << self.geom.index_bits()) | set as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> BasicCache {
        // 4 sets x 2 ways.
        BasicCache::new(CacheGeometry::new(512, 2, 64), PolicyKind::Lru)
    }

    fn addr_in_set(set: u64, k: u64) -> LineAddr {
        LineAddr::new(set + 4 * k) // 4 sets
    }

    #[test]
    fn fill_then_read_hits() {
        let mut c = small_cache();
        let a = addr_in_set(0, 0);
        assert!(!c.read(a));
        c.fill(a, CacheLine::zeroed(), false);
        assert!(c.read(a));
    }

    #[test]
    fn conflict_eviction_returns_victim() {
        let mut c = small_cache();
        let a = addr_in_set(1, 0);
        let b = addr_in_set(1, 1);
        let d = addr_in_set(1, 2);
        c.fill(a, CacheLine::zeroed(), false);
        c.fill(b, CacheLine::zeroed(), false);
        let ev = c.fill(d, CacheLine::zeroed(), false).expect("set is full");
        assert_eq!(ev.addr, a, "LRU victim is the oldest fill");
        assert!(!ev.dirty);
        assert!(c.probe(a).is_none());
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let a = addr_in_set(2, 0);
        let data = CacheLine::from_u32_words(&[7; 16]);
        c.fill(a, CacheLine::zeroed(), false);
        assert!(c.write(a, data));
        c.fill(addr_in_set(2, 1), CacheLine::zeroed(), false);
        let ev = c
            .fill(addr_in_set(2, 2), CacheLine::zeroed(), false)
            .expect("eviction");
        assert!(ev.dirty);
        assert_eq!(ev.data, data);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = small_cache();
        let a = LineAddr::new(0x1234_5678 & !3 | 3); // set 3, big tag
        c.fill(a, CacheLine::zeroed(), false);
        c.fill(addr_in_set(3, 1), CacheLine::zeroed(), false);
        let ev = c
            .fill(addr_in_set(3, 2), CacheLine::zeroed(), false)
            .expect("eviction");
        assert_eq!(ev.addr, a);
    }

    #[test]
    fn invalidate_removes_and_reports_dirty_data() {
        let mut c = small_cache();
        let a = addr_in_set(0, 5);
        let data = CacheLine::from_u64_words(&[42; 8]);
        c.fill(a, data, true);
        let ev = c.invalidate(a).expect("line present");
        assert!(ev.dirty);
        assert_eq!(ev.data, data);
        assert!(c.probe(a).is_none());
        assert_eq!(c.invalidate(a), None);
        assert_eq!(c.stats().back_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_fill_panics() {
        let mut c = small_cache();
        let a = addr_in_set(0, 0);
        c.fill(a, CacheLine::zeroed(), false);
        c.fill(a, CacheLine::zeroed(), false);
    }

    #[test]
    fn probe_does_not_perturb_recency_or_stats() {
        let mut c = small_cache();
        let a = addr_in_set(1, 0);
        let b = addr_in_set(1, 1);
        c.fill(a, CacheLine::zeroed(), false);
        c.fill(b, CacheLine::zeroed(), false);
        // Probing `a` must not promote it.
        for _ in 0..10 {
            let _ = c.probe(a);
        }
        let ev = c
            .fill(addr_in_set(1, 2), CacheLine::zeroed(), false)
            .expect("eviction");
        assert_eq!(ev.addr, a);
        assert_eq!(c.stats().read_hits, 0);
    }

    #[test]
    fn resident_lines_reports_exact_set() {
        let mut c = small_cache();
        let lines = [addr_in_set(0, 0), addr_in_set(1, 3), addr_in_set(2, 9)];
        for &a in &lines {
            c.fill(a, CacheLine::zeroed(), false);
        }
        let mut resident: Vec<LineAddr> = c.resident_lines().collect();
        resident.sort();
        let mut expected = lines.to_vec();
        expected.sort();
        assert_eq!(resident, expected);
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = small_cache();
        let a = addr_in_set(0, 0);
        assert!(!c.write(a, CacheLine::zeroed()));
        assert!(c.probe(a).is_none());
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn peek_and_dirty_views() {
        let mut c = small_cache();
        let a = addr_in_set(0, 1);
        let data = CacheLine::from_u32_words(&[3; 16]);
        c.fill(a, data, false);
        assert_eq!(c.peek_data(a), Some(data));
        assert_eq!(c.is_dirty(a), Some(false));
        c.write(a, CacheLine::zeroed());
        assert_eq!(c.is_dirty(a), Some(true));
        assert_eq!(c.peek_data(addr_in_set(3, 3)), None);
    }

    #[test]
    fn refill_after_dirty_eviction_clears_dirty_bit() {
        let mut c = small_cache();
        let a = addr_in_set(2, 0);
        c.fill(a, CacheLine::zeroed(), true);
        c.invalidate(a).expect("present");
        c.fill(a, CacheLine::zeroed(), false);
        assert_eq!(c.is_dirty(a), Some(false));
    }
}
