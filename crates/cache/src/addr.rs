//! Line-address newtype.

use core::fmt;

/// A cache-line address: the byte address with the 6 offset bits stripped.
///
/// All caches in the modeled hierarchy use 64-byte lines, so the offset
/// width is fixed crate-wide.
///
/// # Examples
///
/// ```
/// use bv_cache::LineAddr;
///
/// let a = LineAddr::from_byte_addr(0x1234_5678);
/// assert_eq!(a.byte_addr(), 0x1234_5640); // aligned down to 64 B
/// assert_eq!(a.get(), 0x1234_5678 >> 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    const OFFSET_BITS: u32 = 6;

    /// Creates a line address from a raw line number.
    #[must_use]
    pub fn new(line_number: u64) -> LineAddr {
        LineAddr(line_number)
    }

    /// Creates a line address from a byte address (drops the offset bits).
    #[must_use]
    pub fn from_byte_addr(byte_addr: u64) -> LineAddr {
        LineAddr(byte_addr >> Self::OFFSET_BITS)
    }

    /// The raw line number.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The aligned byte address of the first byte in the line.
    #[must_use]
    pub fn byte_addr(self) -> u64 {
        self.0 << Self::OFFSET_BITS
    }

    /// The line `n` lines after this one (wrapping).
    #[must_use]
    pub fn offset(self, n: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(n as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.byte_addr())
    }
}

impl From<u64> for LineAddr {
    fn from(line_number: u64) -> LineAddr {
        LineAddr::new(line_number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_addr_roundtrip_is_aligned() {
        let a = LineAddr::from_byte_addr(0xfff);
        assert_eq!(a.byte_addr() % 64, 0);
        assert_eq!(LineAddr::from_byte_addr(a.byte_addr()), a);
    }

    #[test]
    fn offset_moves_by_lines() {
        let a = LineAddr::new(100);
        assert_eq!(a.offset(3), LineAddr::new(103));
        assert_eq!(a.offset(-100), LineAddr::new(0));
    }

    #[test]
    fn same_line_accesses_collapse() {
        assert_eq!(
            LineAddr::from_byte_addr(0x1000),
            LineAddr::from_byte_addr(0x103f)
        );
        assert_ne!(
            LineAddr::from_byte_addr(0x1000),
            LineAddr::from_byte_addr(0x1040)
        );
    }
}
