//! Cache geometry: size, associativity, and index arithmetic.

use core::fmt;

/// The shape of one cache: capacity, associativity, and line size.
///
/// All quantities must be powers of two so that set indexing is a simple
/// bit-field extraction, as in the modeled hardware.
///
/// # Examples
///
/// ```
/// use bv_cache::CacheGeometry;
///
/// // The paper's single-thread LLC: 2 MB, 16-way, 64 B lines.
/// let llc = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
/// assert_eq!(llc.sets(), 2048);
/// assert_eq!(llc.index_bits(), 11);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: usize,
    ways: usize,
    line_bytes: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// The associativity need not be a power of two — the paper's 3 MB and
    /// 6 MB configurations add 8 ways to a 16-way baseline, giving 24-way
    /// caches — but the line size and the resulting set count must be, so
    /// that indexing remains a bit-field extraction.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, if the size is not an
    /// exact multiple of `ways * line_bytes`, or if the resulting set count
    /// is zero or not a power of two.
    #[must_use]
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> CacheGeometry {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "associativity must be at least 1");
        assert!(
            size_bytes.is_multiple_of(ways * line_bytes),
            "cache size {size_bytes} not a multiple of {ways} ways x {line_bytes} B"
        );
        let sets = size_bytes / (ways * line_bytes);
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count {sets} must be a nonzero power of two"
        );
        CacheGeometry {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Bits of the line address used as the set index.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Bits of the byte address used as the line offset.
    #[must_use]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Set index for a line address (byte address >> offset bits).
    #[must_use]
    pub fn set_index(&self, line: u64) -> usize {
        (line & (self.sets() as u64 - 1)) as usize
    }

    /// Tag for a line address (the bits above the set index).
    #[must_use]
    pub fn tag(&self, line: u64) -> u64 {
        line >> self.index_bits()
    }
}

impl fmt::Debug for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheGeometry({} KB, {}-way, {} sets, {} B lines)",
            self.size_bytes / 1024,
            self.ways,
            self.sets(),
            self.line_bytes
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.size_bytes >= 1024 * 1024 && self.size_bytes.is_multiple_of(1024 * 1024) {
            write!(
                f,
                "{} MB {}-way",
                self.size_bytes / (1024 * 1024),
                self.ways
            )
        } else {
            write!(f, "{} KB {}-way", self.size_bytes / 1024, self.ways)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hierarchy_geometries() {
        let l1 = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(l1.sets(), 64);
        let l2 = CacheGeometry::new(256 * 1024, 8, 64);
        assert_eq!(l2.sets(), 512);
        let llc = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        assert_eq!(llc.sets(), 2048);
        assert_eq!(llc.index_bits(), 11);
        assert_eq!(llc.offset_bits(), 6);
        let llc_mp = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
        assert_eq!(llc_mp.sets(), 4096);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let g = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        let line: u64 = 0xabcd_1234;
        let rebuilt = (g.tag(line) << g.index_bits()) | g.set_index(line) as u64;
        assert_eq!(rebuilt, line);
    }

    #[test]
    fn paper_3mb_is_24_way_with_2048_sets() {
        // Section VI.A: "We construct a 3MB cache by adding 8 ways to a
        // 2MB, 16-way baseline."
        let g = CacheGeometry::new(3 * 1024 * 1024, 24, 64);
        assert_eq!(g.sets(), 2048);
        let g6 = CacheGeometry::new(6 * 1024 * 1024, 24, 64);
        assert_eq!(g6.sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_non_divisible_size() {
        let _ = CacheGeometry::new(1000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(3 * 64 * 16, 16, 64); // 3 sets
    }

    #[test]
    fn display_prefers_mb_for_large_caches() {
        let g = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        assert_eq!(g.to_string(), "2 MB 16-way");
        let l1 = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(l1.to_string(), "32 KB 8-way");
    }
}
