//! The set-engine: one tag/replacement core under every LLC organization.
//!
//! Each organization in `bv-core` (uncompressed, two-tag, Base-Victim,
//! VSC, DCC) used to re-implement the same plumbing privately: a flat
//! `sets x ways` slot array, the tag walk, the install-way choice
//! (first invalid way, else the policy's victim), replacement-policy
//! bookkeeping, and the [`LlcStats`] counters. [`SetEngine`] centralizes
//! that substrate so each organization file keeps only its paper-specific
//! delta — victim-cache partnering, partner-line victimization, segment
//! accounting, or super-block grouping.
//!
//! # Data layout
//!
//! The tag array is stored **structure-of-arrays**: one contiguous
//! `Vec<u64>` of tags, one packed per-set validity bitmask (`ways <= 64`),
//! and a parallel `Vec<S>` of organization payloads. A set probe is then
//! a linear scan over `ways` adjacent `u64` words — one or two cache
//! lines — folded into a match bitmask the autovectorizer can lift to
//! SIMD compares, instead of a strided walk over fat `(valid, tag, meta)`
//! records whose payload (a 64-byte data line and more) pushed each tag
//! onto its own cache line. `first_invalid` and `valid_count` collapse to
//! bitmask arithmetic on the validity words.
//!
//! Organizations do not see the layout: [`SetEngine::slot`] and
//! [`SetEngine::slot_mut`] return the [`SlotView`] / [`SlotViewMut`] view
//! types, which present the old `{valid, tag, meta}` slot shape over the
//! split arrays. The retained scalar walk
//! [`SetEngine::find_reference`] is the differential oracle for the
//! vector-friendly probe (property-tested in `tests/probe_differential.rs`).
//!
//! The engine is generic over the concrete [`ReplacementPolicy`], so the
//! per-access hot path is monomorphized: organizations instantiated through
//! [`PolicyKind::dispatch`](crate::replacement::PolicyVisitor) carry zero
//! dynamic dispatch, and the default [`Policy`](crate::replacement::Policy)
//! parameter reduces a runtime-selected policy to one enum branch.
//!
//! What the engine deliberately does *not* do is map addresses to sets:
//! most organizations index sets by geometry bit-extraction, but DCC
//! indexes by `super_block % sets`. Callers therefore speak (set, tag)
//! and (set, way), and keep address reconstruction to themselves.
//!
//! # Examples
//!
//! ```
//! use bv_cache::engine::{SetEngine, SlotMeta};
//! use bv_cache::PolicyKind;
//!
//! #[derive(Clone, Copy)]
//! struct Plain;
//! impl SlotMeta for Plain {
//!     fn empty() -> Plain {
//!         Plain
//!     }
//! }
//!
//! let mut engine: SetEngine<_, Plain> = SetEngine::new(16, 4, PolicyKind::Lru.instantiate(16, 4));
//! let way = engine.fill_way(3);
//! engine.install(3, way, 0x7, Plain, bv_compress::SegmentCount::FULL);
//! assert_eq!(engine.find(3, 0x7), Some(way));
//! ```

use crate::replacement::ReplacementPolicy;
use crate::stats::{Effects, LlcStats};
use bv_compress::SegmentCount;
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// Per-slot payload stored next to the tag: whatever one organization
/// needs per logical line (dirty bit, data, compressed size, sub-block
/// map, ...).
pub trait SlotMeta {
    /// The payload of an empty (invalid) slot.
    fn empty() -> Self;
}

/// One logical tag-array entry as an owned value: validity and tag owned
/// by the engine, payload owned by the organization. The engine stores
/// these fields in separate arrays (see the module docs); `EngineSlot` is
/// the shape organizations copy a slot out into via
/// [`SlotView::copied`].
#[derive(Clone, Copy, Debug)]
pub struct EngineSlot<S> {
    /// Whether this slot holds a line.
    pub valid: bool,
    /// The line's tag (meaning is organization-specific: line tag for
    /// most, super-block tag for DCC).
    pub tag: u64,
    /// Organization-specific payload.
    pub meta: S,
}

/// Read-only view of one `(set, way)` slot over the split arrays,
/// mirroring the `{valid, tag, meta}` shape of [`EngineSlot`].
#[derive(Clone, Copy, Debug)]
pub struct SlotView<'a, S> {
    /// Whether this slot holds a line.
    pub valid: bool,
    /// The line's tag.
    pub tag: u64,
    /// Organization-specific payload.
    pub meta: &'a S,
}

impl<S: Copy> SlotView<'_, S> {
    /// Copies the slot out of the engine's arrays into an owned
    /// [`EngineSlot`] (the old `*engine.slot(set, way)` idiom).
    #[must_use]
    pub fn copied(&self) -> EngineSlot<S> {
        EngineSlot {
            valid: self.valid,
            tag: self.tag,
            meta: *self.meta,
        }
    }
}

/// Mutable view of one `(set, way)` slot. Validity lives in a packed
/// per-set bitmask, so it is exposed through accessors rather than a
/// field; the payload is a plain `&mut S` so organization code mutates
/// `slot.meta.<field>` exactly as it did against the fat-slot layout.
#[derive(Debug)]
pub struct SlotViewMut<'a, S> {
    valid_word: &'a mut u64,
    bit: u32,
    tag: &'a mut u64,
    /// Organization-specific payload.
    pub meta: &'a mut S,
}

impl<S> SlotViewMut<'_, S> {
    /// Whether this slot holds a line.
    #[must_use]
    pub fn valid(&self) -> bool {
        *self.valid_word >> self.bit & 1 == 1
    }

    /// The line's tag.
    #[must_use]
    pub fn tag(&self) -> u64 {
        *self.tag
    }

    /// Resets the slot to the empty state.
    pub fn clear(&mut self)
    where
        S: SlotMeta,
    {
        *self.valid_word &= !(1u64 << self.bit);
        *self.tag = 0;
        *self.meta = S::empty();
    }
}

/// The shared tag/replacement core: a `sets x ways` structure-of-arrays
/// tag store, the replacement policy driving it, and the [`LlcStats`]
/// counters every organization reports.
///
/// `ways` is the number of *logical* slots per set — physical ways for
/// the uncompressed baseline and Base-Victim's baseline array, `2N` for
/// the doubled-tag organizations (two-tag, VSC, DCC). At most 64, so one
/// `u64` bitmask covers a set's validity.
///
/// The engine is additionally generic over an [`EventSink`], defaulted
/// to [`NoEventSink`]: tag-level decisions (demand hits and misses,
/// invalidations) are emitted from here, and organizations push their
/// paper-specific events through [`SetEngine::emit`]. Every emission is
/// guarded by `E::ENABLED`, a compile-time constant, so the default
/// build carries no event cost at all.
#[derive(Clone, Debug)]
pub struct SetEngine<P, S, E = NoEventSink> {
    sets: usize,
    ways: usize,
    /// `sets * ways` tags, row-major: set `s` owns `tags[s*ways..(s+1)*ways]`.
    tags: Vec<u64>,
    /// One validity bitmask per set; bit `w` set means `(set, w)` holds a
    /// line. Invalid slots keep `tags[i] == 0`, but validity is always
    /// decided by this mask, never by a sentinel tag value.
    valid: Vec<u64>,
    /// `sets * ways` organization payloads, parallel to `tags`.
    metas: Vec<S>,
    policy: P,
    stats: LlcStats,
    sink: E,
}

impl<P: ReplacementPolicy, S: SlotMeta + Clone> SetEngine<P, S> {
    /// Creates an empty engine over a `sets x ways` logical tag array.
    ///
    /// # Panics
    ///
    /// Panics if the policy was built for different dimensions or if
    /// `ways > 64`.
    #[must_use]
    pub fn new(sets: usize, ways: usize, policy: P) -> SetEngine<P, S> {
        SetEngine::with_sink(sets, ways, policy, NoEventSink)
    }
}

impl<P: ReplacementPolicy, S: SlotMeta + Clone, E: EventSink> SetEngine<P, S, E> {
    /// Creates an empty engine emitting events into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the policy was built for different dimensions or if
    /// `ways > 64`.
    #[must_use]
    pub fn with_sink(sets: usize, ways: usize, policy: P, sink: E) -> SetEngine<P, S, E> {
        assert_eq!(policy.sets(), sets, "policy built for wrong set count");
        assert_eq!(policy.ways(), ways, "policy built for wrong way count");
        assert!(ways <= 64, "engine validity mask covers at most 64 ways");
        SetEngine {
            sets,
            ways,
            tags: vec![0; sets * ways],
            valid: vec![0; sets],
            metas: vec![S::empty(); sets * ways],
            policy,
            stats: LlcStats::default(),
            sink,
        }
    }
}

impl<P: ReplacementPolicy, S, E: EventSink> SetEngine<P, S, E> {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of logical slots per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        debug_assert!(way < self.ways);
        set * self.ways + way
    }

    /// Bitmask with one bit per way of a set.
    #[inline]
    fn ways_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// The slot at `(set, way)`.
    #[must_use]
    pub fn slot(&self, set: usize, way: usize) -> SlotView<'_, S> {
        let i = self.idx(set, way);
        SlotView {
            valid: self.valid[set] >> way & 1 == 1,
            tag: self.tags[i],
            meta: &self.metas[i],
        }
    }

    /// Mutable access to the slot at `(set, way)`.
    ///
    /// Mutating validity or tags directly is the organization's
    /// responsibility to pair with the matching policy callback; prefer
    /// [`install`](SetEngine::install) / [`invalidate`](SetEngine::invalidate).
    pub fn slot_mut(&mut self, set: usize, way: usize) -> SlotViewMut<'_, S> {
        let i = self.idx(set, way);
        SlotViewMut {
            valid_word: &mut self.valid[set],
            bit: way as u32,
            tag: &mut self.tags[i],
            meta: &mut self.metas[i],
        }
    }

    /// The way holding `tag` in `set`, if resident.
    ///
    /// This is the vector-friendly probe: one pass over the set's
    /// contiguous tag words folding equality into a match bitmask, then
    /// one AND with the validity mask.
    /// [`find_reference`](SetEngine::find_reference) is the retained
    /// scalar walk it is differential-tested against.
    #[must_use]
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let mut matches = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            matches |= u64::from(t == tag) << w;
        }
        matches &= self.valid[set];
        if matches == 0 {
            None
        } else {
            Some(matches.trailing_zeros() as usize)
        }
    }

    /// The retained scalar reference walk: way-by-way validity and tag
    /// checks, exactly the pre-SoA probe. Kept as the differential oracle
    /// for [`find`](SetEngine::find) (and as the yardstick behind the
    /// `probe-only` bench rows); not used on any hot path.
    #[must_use]
    pub fn find_reference(&self, set: usize, tag: u64) -> Option<usize> {
        (0..self.ways).find(|&w| {
            let s = self.slot(set, w);
            s.valid && s.tag == tag
        })
    }

    /// The first invalid way in `set`, if any — one bitmask negation
    /// instead of a walk.
    #[must_use]
    pub fn first_invalid(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & self.ways_mask();
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    /// The way a new line should go to: the first invalid way, else the
    /// policy's victim. This is the install order every organization
    /// shares; the caller evicts the occupant if the returned way is
    /// still valid.
    pub fn fill_way(&mut self, set: usize) -> usize {
        self.first_invalid(set)
            .unwrap_or_else(|| self.policy.victim(set))
    }

    /// Writes a line into `(set, way)` and records the fill with the
    /// policy, passing `size` through to size-aware policies.
    ///
    /// Does *not* notify the policy about any occupant being replaced —
    /// overwriting a valid slot is a silent replacement (the uncompressed
    /// and Base-Victim baseline behavior). Organizations that must free a
    /// slot explicitly call [`invalidate`](SetEngine::invalidate) first.
    pub fn install(&mut self, set: usize, way: usize, tag: u64, meta: S, size: SegmentCount) {
        let i = self.idx(set, way);
        self.valid[set] |= 1u64 << way;
        self.tags[i] = tag;
        self.metas[i] = meta;
        self.policy.on_fill_sized(set, way, size);
    }

    /// Records a demand hit on `(set, way)`: touches the policy and
    /// counts a baseline hit.
    pub fn demand_hit(&mut self, set: usize, way: usize) {
        self.policy.on_hit(set, way);
        self.stats.base_hits += 1;
        if E::ENABLED {
            let tag = self.tags[self.idx(set, way)];
            self.sink
                .emit(CacheEvent::new(set, way, EventKind::DemandHit { tag }));
        }
    }

    /// Records a demand miss on `set`: trains set-dueling policies and
    /// counts the miss.
    pub fn demand_miss(&mut self, set: usize) {
        self.policy.on_miss(set);
        self.stats.read_misses += 1;
        if E::ENABLED {
            self.sink
                .emit(CacheEvent::set_wide(set, EventKind::DemandMiss));
        }
    }

    /// Touches the policy for a hit without counting statistics (prefetch
    /// probes and other non-demand touches).
    pub fn touch(&mut self, set: usize, way: usize) {
        self.policy.on_hit(set, way);
    }

    /// Chooses the policy's victim way in a full `set`.
    pub fn victim(&mut self, set: usize) -> usize {
        self.policy.victim(set)
    }

    /// Empties `(set, way)` and notifies the policy.
    pub fn invalidate(&mut self, set: usize, way: usize)
    where
        S: SlotMeta,
    {
        self.invalidate_as(set, way, EvictCause::Invalidation);
    }

    /// Empties `(set, way)` and notifies the policy, labeling the emitted
    /// eviction event with an organization-chosen cause (replacement,
    /// size pressure). Identical to [`invalidate`](SetEngine::invalidate)
    /// in untraced builds.
    pub fn invalidate_as(&mut self, set: usize, way: usize, cause: EvictCause)
    where
        S: SlotMeta,
    {
        let i = self.idx(set, way);
        if E::ENABLED && self.valid[set] >> way & 1 == 1 {
            self.sink.emit(CacheEvent::new(
                set,
                way,
                EventKind::Eviction {
                    tag: self.tags[i],
                    cause,
                },
            ));
        }
        self.valid[set] &= !(1u64 << way);
        self.tags[i] = 0;
        self.metas[i] = S::empty();
        self.policy.on_invalidate(set, way);
    }

    /// Emits an organization-level event. A no-op (including argument
    /// construction at the call site, which should be guarded by
    /// `E::ENABLED`) when the sink is disabled.
    #[inline]
    pub fn emit(&mut self, ev: CacheEvent) {
        if E::ENABLED {
            self.sink.emit(ev);
        }
    }

    /// Whether this engine's sink retains events.
    #[must_use]
    pub fn events_enabled(&self) -> bool {
        E::ENABLED
    }

    /// Drains retained events from the sink, oldest first.
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.sink.drain()
    }

    /// Read access to the sink (capture statistics, capacity).
    #[must_use]
    pub fn sink(&self) -> &E {
        &self.sink
    }

    /// How many retained events the sink has overwritten (bounded
    /// sinks); 0 otherwise.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Forwards a downgrade hint to the policy.
    pub fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.policy.hint_downgrade(set, way);
    }

    /// The policy's eviction-age rank for `(set, way)`.
    #[must_use]
    pub fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        self.policy.eviction_rank(set, way)
    }

    /// Whether `(set, way)` is an eviction candidate under the policy.
    #[must_use]
    pub fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        self.policy.is_eviction_candidate(set, way)
    }

    /// All valid slots as `(set, way, slot)` triples, for resident-line
    /// listings and invariant checks.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, usize, SlotView<'_, S>)> {
        (0..self.sets).flat_map(move |set| {
            let mask = self.valid[set];
            (0..self.ways)
                .filter(move |w| mask >> w & 1 == 1)
                .map(move |w| (set, w, self.slot(set, w)))
        })
    }

    /// Number of valid slots across all sets — the occupancy probe the
    /// telemetry sampler turns into an effective-capacity series. One
    /// popcount per set, no per-slot walk.
    #[must_use]
    pub fn valid_count(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Mutable counters, for organization-specific events (victim hits,
    /// writeback accounting, fill counts).
    pub fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    /// Folds one operation's side effects into the lifetime counters.
    pub fn absorb(&mut self, effects: Effects) {
        self.stats.absorb_effects(effects);
    }

    /// Read access to the policy, for organization-specific victim scans.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy, for organization-specific sequences
    /// the engine has no verb for.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicyKind;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Tagged(u32);

    impl SlotMeta for Tagged {
        fn empty() -> Tagged {
            Tagged(0)
        }
    }

    fn engine() -> SetEngine<crate::replacement::Policy, Tagged> {
        SetEngine::new(4, 2, PolicyKind::Lru.instantiate(4, 2))
    }

    #[test]
    fn fill_way_prefers_invalid_then_policy_victim() {
        let mut e = engine();
        assert_eq!(e.fill_way(0), 0);
        e.install(0, 0, 10, Tagged(1), SegmentCount::FULL);
        assert_eq!(e.fill_way(0), 1);
        e.install(0, 1, 11, Tagged(2), SegmentCount::FULL);
        // Set full: LRU victim is way 0 (filled first, never touched).
        assert_eq!(e.fill_way(0), 0);
    }

    #[test]
    fn valid_count_tracks_installs_and_invalidations() {
        let mut e = engine();
        assert_eq!(e.valid_count(), 0);
        e.install(0, 0, 10, Tagged(1), SegmentCount::FULL);
        e.install(3, 1, 11, Tagged(2), SegmentCount::FULL);
        assert_eq!(e.valid_count(), 2);
        e.invalidate(0, 0);
        assert_eq!(e.valid_count(), 1);
    }

    #[test]
    fn find_matches_only_valid_tags() {
        let mut e = engine();
        assert_eq!(e.find(2, 7), None);
        e.install(2, 0, 7, Tagged(9), SegmentCount::FULL);
        assert_eq!(e.find(2, 7), Some(0));
        e.invalidate(2, 0);
        assert_eq!(e.find(2, 7), None);
    }

    #[test]
    fn find_ignores_stale_tag_words_of_invalid_slots() {
        // A cleared slot zeroes its tag word, but validity — not the tag
        // value — must decide matches: tag 0 is a legal live tag.
        let mut e = engine();
        e.install(1, 0, 0, Tagged(3), SegmentCount::FULL);
        assert_eq!(e.find(1, 0), Some(0), "tag 0 is matchable when valid");
        e.invalidate(1, 0);
        assert_eq!(e.find(1, 0), None, "tag 0 unmatchable when invalid");
    }

    #[test]
    fn find_agrees_with_reference_walk() {
        let mut e = engine();
        e.install(0, 1, 42, Tagged(1), SegmentCount::FULL);
        for tag in [0, 7, 42, 43] {
            assert_eq!(e.find(0, tag), e.find_reference(0, tag));
        }
    }

    #[test]
    fn demand_hits_and_misses_update_stats() {
        let mut e = engine();
        e.install(1, 0, 3, Tagged(0), SegmentCount::FULL);
        e.demand_hit(1, 0);
        e.demand_miss(1);
        assert_eq!(e.stats().base_hits, 1);
        assert_eq!(e.stats().read_misses, 1);
    }

    #[test]
    fn demand_hit_protects_the_line_from_eviction() {
        let mut e = engine();
        e.install(0, 0, 1, Tagged(0), SegmentCount::FULL);
        e.install(0, 1, 2, Tagged(0), SegmentCount::FULL);
        e.demand_hit(0, 0); // way 0 becomes MRU; way 1 is now the victim
        assert_eq!(e.fill_way(0), 1);
    }

    #[test]
    fn iter_valid_reports_set_and_way() {
        let mut e = engine();
        e.install(3, 1, 42, Tagged(5), SegmentCount::FULL);
        let all: Vec<_> = e
            .iter_valid()
            .map(|(s, w, slot)| (s, w, slot.tag))
            .collect();
        assert_eq!(all, vec![(3, 1, 42)]);
    }

    #[test]
    fn slot_views_roundtrip_mutation() {
        let mut e = engine();
        e.install(2, 1, 9, Tagged(4), SegmentCount::FULL);
        assert!(e.slot_mut(2, 1).valid());
        assert_eq!(e.slot_mut(2, 1).tag(), 9);
        *e.slot_mut(2, 1).meta = Tagged(8);
        assert_eq!(e.slot(2, 1).meta, &Tagged(8));
        assert_eq!(e.slot(2, 1).copied().meta, Tagged(8));
        e.slot_mut(2, 1).clear();
        assert!(!e.slot(2, 1).valid);
        assert_eq!(e.find(2, 9), None);
    }

    #[test]
    fn absorb_folds_effects_into_stats() {
        let mut e = engine();
        e.absorb(Effects {
            memory_writes: 2,
            back_invalidations: 1,
            ..Effects::default()
        });
        assert_eq!(e.stats().memory_writes, 2);
        assert_eq!(e.stats().back_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "wrong set count")]
    fn dimension_mismatch_is_rejected() {
        let _: SetEngine<_, Tagged> = SetEngine::new(8, 2, PolicyKind::Lru.instantiate(4, 2));
    }

    #[test]
    fn traced_engine_emits_hits_misses_and_invalidations() {
        use bv_events::RingSink;
        let mut e: SetEngine<_, Tagged, RingSink> =
            SetEngine::with_sink(4, 2, PolicyKind::Lru.instantiate(4, 2), RingSink::new(16));
        assert!(e.events_enabled());
        e.install(1, 0, 7, Tagged(0), SegmentCount::FULL);
        e.demand_hit(1, 0);
        e.demand_miss(1);
        e.invalidate(1, 0);
        let events = e.drain_events();
        let kinds: Vec<&str> = events.iter().map(|ev| ev.kind.name()).collect();
        assert_eq!(kinds, vec!["hit", "miss", "eviction"]);
        assert_eq!(events[0].kind.tag(), Some(7));
        assert_eq!(events[1].way, bv_events::CacheEvent::NO_WAY);
        // Invalidating an already-empty slot emits nothing.
        e.invalidate(1, 0);
        assert!(e.drain_events().is_empty());
        assert_eq!(e.sink().emitted(), 3);
    }

    #[test]
    fn default_engine_reports_events_disabled() {
        let mut e = engine();
        assert!(!e.events_enabled());
        e.install(0, 0, 1, Tagged(0), SegmentCount::FULL);
        e.demand_hit(0, 0);
        assert!(e.drain_events().is_empty());
    }
}
