//! The set-engine: one tag/replacement core under every LLC organization.
//!
//! Each organization in `bv-core` (uncompressed, two-tag, Base-Victim,
//! VSC, DCC) used to re-implement the same plumbing privately: a flat
//! `sets x ways` slot array, the tag walk, the install-way choice
//! (first invalid way, else the policy's victim), replacement-policy
//! bookkeeping, and the [`LlcStats`] counters. [`SetEngine`] centralizes
//! that substrate so each organization file keeps only its paper-specific
//! delta — victim-cache partnering, partner-line victimization, segment
//! accounting, or super-block grouping.
//!
//! The engine is generic over the concrete [`ReplacementPolicy`], so the
//! per-access hot path is monomorphized: organizations instantiated through
//! [`PolicyKind::dispatch`](crate::replacement::PolicyVisitor) carry zero
//! dynamic dispatch, and the default [`Policy`](crate::replacement::Policy)
//! parameter reduces a runtime-selected policy to one enum branch.
//!
//! What the engine deliberately does *not* do is map addresses to sets:
//! most organizations index sets by geometry bit-extraction, but DCC
//! indexes by `super_block % sets`. Callers therefore speak (set, tag)
//! and (set, way), and keep address reconstruction to themselves.
//!
//! # Examples
//!
//! ```
//! use bv_cache::engine::{SetEngine, SlotMeta};
//! use bv_cache::PolicyKind;
//!
//! #[derive(Clone, Copy)]
//! struct Plain;
//! impl SlotMeta for Plain {
//!     fn empty() -> Plain {
//!         Plain
//!     }
//! }
//!
//! let mut engine: SetEngine<_, Plain> = SetEngine::new(16, 4, PolicyKind::Lru.instantiate(16, 4));
//! let way = engine.fill_way(3);
//! engine.install(3, way, 0x7, Plain, bv_compress::SegmentCount::FULL);
//! assert_eq!(engine.find(3, 0x7), Some(way));
//! ```

use crate::replacement::ReplacementPolicy;
use crate::stats::{Effects, LlcStats};
use bv_compress::SegmentCount;
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// Per-slot payload stored next to the tag: whatever one organization
/// needs per logical line (dirty bit, data, compressed size, sub-block
/// map, ...).
pub trait SlotMeta {
    /// The payload of an empty (invalid) slot.
    fn empty() -> Self;
}

/// One logical tag-array entry: validity and tag owned by the engine,
/// payload owned by the organization.
#[derive(Clone, Copy, Debug)]
pub struct EngineSlot<S> {
    /// Whether this slot holds a line.
    pub valid: bool,
    /// The line's tag (meaning is organization-specific: line tag for
    /// most, super-block tag for DCC).
    pub tag: u64,
    /// Organization-specific payload.
    pub meta: S,
}

impl<S: SlotMeta> EngineSlot<S> {
    fn empty() -> EngineSlot<S> {
        EngineSlot {
            valid: false,
            tag: 0,
            meta: S::empty(),
        }
    }

    /// Resets the slot to the empty state.
    pub fn clear(&mut self) {
        *self = EngineSlot::empty();
    }
}

/// The shared tag/replacement core: a `sets x ways` slot array, the
/// replacement policy driving it, and the [`LlcStats`] counters every
/// organization reports.
///
/// `ways` is the number of *logical* slots per set — physical ways for
/// the uncompressed baseline and Base-Victim's baseline array, `2N` for
/// the doubled-tag organizations (two-tag, VSC, DCC).
///
/// The engine is additionally generic over an [`EventSink`], defaulted
/// to [`NoEventSink`]: tag-level decisions (demand hits and misses,
/// invalidations) are emitted from here, and organizations push their
/// paper-specific events through [`SetEngine::emit`]. Every emission is
/// guarded by `E::ENABLED`, a compile-time constant, so the default
/// build carries no event cost at all.
#[derive(Clone, Debug)]
pub struct SetEngine<P, S, E = NoEventSink> {
    sets: usize,
    ways: usize,
    slots: Vec<EngineSlot<S>>,
    policy: P,
    stats: LlcStats,
    sink: E,
}

impl<P: ReplacementPolicy, S: SlotMeta> SetEngine<P, S>
where
    EngineSlot<S>: Clone,
{
    /// Creates an empty engine over a `sets x ways` logical tag array.
    ///
    /// # Panics
    ///
    /// Panics if the policy was built for different dimensions.
    #[must_use]
    pub fn new(sets: usize, ways: usize, policy: P) -> SetEngine<P, S> {
        SetEngine::with_sink(sets, ways, policy, NoEventSink)
    }
}

impl<P: ReplacementPolicy, S: SlotMeta, E: EventSink> SetEngine<P, S, E>
where
    EngineSlot<S>: Clone,
{
    /// Creates an empty engine emitting events into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the policy was built for different dimensions.
    #[must_use]
    pub fn with_sink(sets: usize, ways: usize, policy: P, sink: E) -> SetEngine<P, S, E> {
        assert_eq!(policy.sets(), sets, "policy built for wrong set count");
        assert_eq!(policy.ways(), ways, "policy built for wrong way count");
        SetEngine {
            sets,
            ways,
            slots: vec![EngineSlot::empty(); sets * ways],
            policy,
            stats: LlcStats::default(),
            sink,
        }
    }
}

impl<P: ReplacementPolicy, S, E: EventSink> SetEngine<P, S, E> {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of logical slots per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The slot at `(set, way)`.
    #[must_use]
    pub fn slot(&self, set: usize, way: usize) -> &EngineSlot<S> {
        &self.slots[set * self.ways + way]
    }

    /// Mutable access to the slot at `(set, way)`.
    ///
    /// Mutating validity or tags directly is the organization's
    /// responsibility to pair with the matching policy callback; prefer
    /// [`install`](SetEngine::install) / [`invalidate`](SetEngine::invalidate).
    pub fn slot_mut(&mut self, set: usize, way: usize) -> &mut EngineSlot<S> {
        &mut self.slots[set * self.ways + way]
    }

    /// The way holding `tag` in `set`, if resident.
    #[must_use]
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .position(|s| s.valid && s.tag == tag)
    }

    /// The first invalid way in `set`, if any.
    #[must_use]
    pub fn first_invalid(&self, set: usize) -> Option<usize> {
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .position(|s| !s.valid)
    }

    /// The way a new line should go to: the first invalid way, else the
    /// policy's victim. This is the install order every organization
    /// shares; the caller evicts the occupant if the returned way is
    /// still valid.
    pub fn fill_way(&mut self, set: usize) -> usize {
        self.first_invalid(set)
            .unwrap_or_else(|| self.policy.victim(set))
    }

    /// Writes a line into `(set, way)` and records the fill with the
    /// policy, passing `size` through to size-aware policies.
    ///
    /// Does *not* notify the policy about any occupant being replaced —
    /// overwriting a valid slot is a silent replacement (the uncompressed
    /// and Base-Victim baseline behavior). Organizations that must free a
    /// slot explicitly call [`invalidate`](SetEngine::invalidate) first.
    pub fn install(&mut self, set: usize, way: usize, tag: u64, meta: S, size: SegmentCount) {
        let slot = &mut self.slots[set * self.ways + way];
        slot.valid = true;
        slot.tag = tag;
        slot.meta = meta;
        self.policy.on_fill_sized(set, way, size);
    }

    /// Records a demand hit on `(set, way)`: touches the policy and
    /// counts a baseline hit.
    pub fn demand_hit(&mut self, set: usize, way: usize) {
        self.policy.on_hit(set, way);
        self.stats.base_hits += 1;
        if E::ENABLED {
            let tag = self.slots[set * self.ways + way].tag;
            self.sink
                .emit(CacheEvent::new(set, way, EventKind::DemandHit { tag }));
        }
    }

    /// Records a demand miss on `set`: trains set-dueling policies and
    /// counts the miss.
    pub fn demand_miss(&mut self, set: usize) {
        self.policy.on_miss(set);
        self.stats.read_misses += 1;
        if E::ENABLED {
            self.sink
                .emit(CacheEvent::set_wide(set, EventKind::DemandMiss));
        }
    }

    /// Touches the policy for a hit without counting statistics (prefetch
    /// probes and other non-demand touches).
    pub fn touch(&mut self, set: usize, way: usize) {
        self.policy.on_hit(set, way);
    }

    /// Chooses the policy's victim way in a full `set`.
    pub fn victim(&mut self, set: usize) -> usize {
        self.policy.victim(set)
    }

    /// Empties `(set, way)` and notifies the policy.
    pub fn invalidate(&mut self, set: usize, way: usize)
    where
        S: SlotMeta,
    {
        self.invalidate_as(set, way, EvictCause::Invalidation);
    }

    /// Empties `(set, way)` and notifies the policy, labeling the emitted
    /// eviction event with an organization-chosen cause (replacement,
    /// size pressure). Identical to [`invalidate`](SetEngine::invalidate)
    /// in untraced builds.
    pub fn invalidate_as(&mut self, set: usize, way: usize, cause: EvictCause)
    where
        S: SlotMeta,
    {
        if E::ENABLED {
            let slot = &self.slots[set * self.ways + way];
            if slot.valid {
                self.sink.emit(CacheEvent::new(
                    set,
                    way,
                    EventKind::Eviction {
                        tag: slot.tag,
                        cause,
                    },
                ));
            }
        }
        self.slots[set * self.ways + way].clear();
        self.policy.on_invalidate(set, way);
    }

    /// Emits an organization-level event. A no-op (including argument
    /// construction at the call site, which should be guarded by
    /// `E::ENABLED`) when the sink is disabled.
    #[inline]
    pub fn emit(&mut self, ev: CacheEvent) {
        if E::ENABLED {
            self.sink.emit(ev);
        }
    }

    /// Whether this engine's sink retains events.
    #[must_use]
    pub fn events_enabled(&self) -> bool {
        E::ENABLED
    }

    /// Drains retained events from the sink, oldest first.
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.sink.drain()
    }

    /// Read access to the sink (capture statistics, capacity).
    #[must_use]
    pub fn sink(&self) -> &E {
        &self.sink
    }

    /// How many retained events the sink has overwritten (bounded
    /// sinks); 0 otherwise.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Forwards a downgrade hint to the policy.
    pub fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.policy.hint_downgrade(set, way);
    }

    /// The policy's eviction-age rank for `(set, way)`.
    #[must_use]
    pub fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        self.policy.eviction_rank(set, way)
    }

    /// Whether `(set, way)` is an eviction candidate under the policy.
    #[must_use]
    pub fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        self.policy.is_eviction_candidate(set, way)
    }

    /// All valid slots as `(set, way, slot)` triples, for resident-line
    /// listings and invariant checks.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, usize, &EngineSlot<S>)> {
        let ways = self.ways;
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .map(move |(i, s)| (i / ways, i % ways, s))
    }

    /// Number of valid slots across all sets — the occupancy probe the
    /// telemetry sampler turns into an effective-capacity series. One
    /// linear pass, no allocation (unlike collecting
    /// [`SetEngine::iter_valid`]).
    #[must_use]
    pub fn valid_count(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Mutable counters, for organization-specific events (victim hits,
    /// writeback accounting, fill counts).
    pub fn stats_mut(&mut self) -> &mut LlcStats {
        &mut self.stats
    }

    /// Folds one operation's side effects into the lifetime counters.
    pub fn absorb(&mut self, effects: Effects) {
        self.stats.absorb_effects(effects);
    }

    /// Read access to the policy, for organization-specific victim scans.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy, for organization-specific sequences
    /// the engine has no verb for.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicyKind;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Tagged(u32);

    impl SlotMeta for Tagged {
        fn empty() -> Tagged {
            Tagged(0)
        }
    }

    fn engine() -> SetEngine<crate::replacement::Policy, Tagged> {
        SetEngine::new(4, 2, PolicyKind::Lru.instantiate(4, 2))
    }

    #[test]
    fn fill_way_prefers_invalid_then_policy_victim() {
        let mut e = engine();
        assert_eq!(e.fill_way(0), 0);
        e.install(0, 0, 10, Tagged(1), SegmentCount::FULL);
        assert_eq!(e.fill_way(0), 1);
        e.install(0, 1, 11, Tagged(2), SegmentCount::FULL);
        // Set full: LRU victim is way 0 (filled first, never touched).
        assert_eq!(e.fill_way(0), 0);
    }

    #[test]
    fn valid_count_tracks_installs_and_invalidations() {
        let mut e = engine();
        assert_eq!(e.valid_count(), 0);
        e.install(0, 0, 10, Tagged(1), SegmentCount::FULL);
        e.install(3, 1, 11, Tagged(2), SegmentCount::FULL);
        assert_eq!(e.valid_count(), 2);
        e.invalidate(0, 0);
        assert_eq!(e.valid_count(), 1);
    }

    #[test]
    fn find_matches_only_valid_tags() {
        let mut e = engine();
        assert_eq!(e.find(2, 7), None);
        e.install(2, 0, 7, Tagged(9), SegmentCount::FULL);
        assert_eq!(e.find(2, 7), Some(0));
        e.invalidate(2, 0);
        assert_eq!(e.find(2, 7), None);
    }

    #[test]
    fn demand_hits_and_misses_update_stats() {
        let mut e = engine();
        e.install(1, 0, 3, Tagged(0), SegmentCount::FULL);
        e.demand_hit(1, 0);
        e.demand_miss(1);
        assert_eq!(e.stats().base_hits, 1);
        assert_eq!(e.stats().read_misses, 1);
    }

    #[test]
    fn demand_hit_protects_the_line_from_eviction() {
        let mut e = engine();
        e.install(0, 0, 1, Tagged(0), SegmentCount::FULL);
        e.install(0, 1, 2, Tagged(0), SegmentCount::FULL);
        e.demand_hit(0, 0); // way 0 becomes MRU; way 1 is now the victim
        assert_eq!(e.fill_way(0), 1);
    }

    #[test]
    fn iter_valid_reports_set_and_way() {
        let mut e = engine();
        e.install(3, 1, 42, Tagged(5), SegmentCount::FULL);
        let all: Vec<_> = e
            .iter_valid()
            .map(|(s, w, slot)| (s, w, slot.tag))
            .collect();
        assert_eq!(all, vec![(3, 1, 42)]);
    }

    #[test]
    fn absorb_folds_effects_into_stats() {
        let mut e = engine();
        e.absorb(Effects {
            memory_writes: 2,
            back_invalidations: 1,
            ..Effects::default()
        });
        assert_eq!(e.stats().memory_writes, 2);
        assert_eq!(e.stats().back_invalidations, 1);
    }

    #[test]
    #[should_panic(expected = "wrong set count")]
    fn dimension_mismatch_is_rejected() {
        let _: SetEngine<_, Tagged> = SetEngine::new(8, 2, PolicyKind::Lru.instantiate(4, 2));
    }

    #[test]
    fn traced_engine_emits_hits_misses_and_invalidations() {
        use bv_events::RingSink;
        let mut e: SetEngine<_, Tagged, RingSink> =
            SetEngine::with_sink(4, 2, PolicyKind::Lru.instantiate(4, 2), RingSink::new(16));
        assert!(e.events_enabled());
        e.install(1, 0, 7, Tagged(0), SegmentCount::FULL);
        e.demand_hit(1, 0);
        e.demand_miss(1);
        e.invalidate(1, 0);
        let events = e.drain_events();
        let kinds: Vec<&str> = events.iter().map(|ev| ev.kind.name()).collect();
        assert_eq!(kinds, vec!["hit", "miss", "eviction"]);
        assert_eq!(events[0].kind.tag(), Some(7));
        assert_eq!(events[1].way, bv_events::CacheEvent::NO_WAY);
        // Invalidating an already-empty slot emits nothing.
        e.invalidate(1, 0);
        assert!(e.drain_events().is_empty());
        assert_eq!(e.sink().emitted(), 3);
    }

    #[test]
    fn default_engine_reports_events_disabled() {
        let mut e = engine();
        assert!(!e.events_enabled());
        e.install(0, 0, 1, Tagged(0), SegmentCount::FULL);
        e.demand_hit(0, 0);
        assert!(e.drain_events().is_empty());
    }
}
