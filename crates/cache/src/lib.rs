//! Generic set-associative cache substrate.
//!
//! This crate provides the building blocks shared by every cache level in
//! the Base-Victim reproduction: address/geometry arithmetic, pluggable
//! replacement policies (LRU, 1-bit NRU, SRRIP, a CHAR-style set-dueling
//! policy, and deterministic pseudo-random), a concrete [`BasicCache`] used
//! for the L1/L2 levels, and the statistics counters every experiment
//! reads.
//!
//! The last-level-cache *organizations* (uncompressed, two-tag,
//! Base-Victim, VSC) live in the `bv-core` crate and are built from these
//! parts.
//!
//! # Examples
//!
//! ```
//! use bv_cache::{BasicCache, CacheGeometry, LineAddr, PolicyKind};
//! use bv_compress::CacheLine;
//!
//! let geom = CacheGeometry::new(32 * 1024, 8, 64); // 32 KB, 8-way
//! let mut l1 = BasicCache::new(geom, PolicyKind::Lru);
//!
//! let addr = LineAddr::from_byte_addr(0x4000);
//! assert!(l1.probe(addr).is_none());
//! l1.fill(addr, CacheLine::zeroed(), false);
//! assert!(l1.probe(addr).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod basic;
pub mod engine;
mod geometry;
pub mod replacement;
mod stats;

pub use addr::LineAddr;
pub use basic::{BasicCache, Eviction};
pub use geometry::CacheGeometry;
pub use replacement::{Policy, PolicyKind, PolicyVisitor, ReplacementPolicy};
pub use stats::{CacheStats, Effects, LlcStats};
