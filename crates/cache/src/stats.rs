//! Per-cache statistics counters.

use core::fmt;

/// Event counters maintained by every cache level.
///
/// All experiment metrics (DRAM read ratio, hit-rate guarantees, LLC access
/// counts for the energy model) are derived from these counters.
///
/// # Examples
///
/// ```
/// use bv_cache::CacheStats;
///
/// let mut stats = CacheStats::default();
/// stats.read_hits = 90;
/// stats.read_misses = 10;
/// assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read (load/ifetch) hits.
    pub read_hits: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write (store) hits.
    pub write_hits: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Prefetch requests that hit.
    pub prefetch_hits: u64,
    /// Prefetch requests that missed (and triggered fills).
    pub prefetch_misses: u64,
    /// Lines evicted (any reason).
    pub evictions: u64,
    /// Dirty evictions that produced a writeback to the next level.
    pub writebacks: u64,
    /// Lines invalidated by back-invalidation from an inclusive outer cache.
    pub back_invalidations: u64,
    /// Fill operations (lines installed).
    pub fills: u64,
}

impl CacheStats {
    /// Total demand accesses (reads + writes, excluding prefetches).
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total demand misses.
    #[must_use]
    pub fn demand_misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total demand hits.
    #[must_use]
    pub fn demand_hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Demand hit rate in [0, 1]; 0 when no accesses were recorded.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits() as f64 / total as f64
        }
    }

    /// Demand misses per kilo-access, a scale-free miss metric.
    #[must_use]
    pub fn misses_per_kilo_access(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses() as f64 * 1000.0 / total as f64
        }
    }

    /// Adds another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_misses += other.prefetch_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.back_invalidations += other.back_invalidations;
        self.fills += other.fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} misses {} (hit rate {:.1}%), {} writebacks",
            self.demand_hits(),
            self.demand_misses(),
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

/// Side effects of one LLC operation, for the timing and energy models.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Effects {
    /// Lines written back to memory by this operation.
    pub memory_writes: u64,
    /// Back-invalidation messages sent to the inner caches.
    pub back_invalidations: u64,
    /// Data migrations between physical ways (Baseline <-> Victim moves),
    /// each costing one data-array read plus one write.
    pub migrations: u64,
    /// Compressed partner lines silently dropped to make room.
    pub partner_evictions: u64,
}

impl Effects {
    /// Accumulates another operation's effects.
    pub fn absorb(&mut self, other: Effects) {
        self.memory_writes += other.memory_writes;
        self.back_invalidations += other.back_invalidations;
        self.migrations += other.migrations;
        self.partner_evictions += other.partner_evictions;
    }
}

/// Counters shared by every LLC organization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Demand reads that hit the Baseline cache (or the sole array).
    pub base_hits: u64,
    /// Demand reads that hit the Victim cache.
    pub victim_hits: u64,
    /// Demand reads that missed entirely.
    pub read_misses: u64,
    /// Writebacks from the L2 that hit.
    pub writeback_hits: u64,
    /// Writebacks from the L2 that missed (forwarded to memory; impossible
    /// under strict inclusion and asserted against in tests).
    pub writeback_misses: u64,
    /// Prefetch fills installed.
    pub prefetch_fills: u64,
    /// Prefetch probes that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Demand fills installed (each implies one memory read).
    pub demand_fills: u64,
    /// Total lines written back to memory.
    pub memory_writes: u64,
    /// Total back-invalidations sent to inner caches.
    pub back_invalidations: u64,
    /// Total Baseline <-> Victim data migrations.
    pub migrations: u64,
    /// Compressed partner lines silently evicted.
    pub partner_evictions: u64,
    /// Victim-cache insertion attempts that found a fitting way.
    pub victim_inserts: u64,
    /// Victim-cache insertion attempts that found no fitting way.
    pub victim_insert_failures: u64,
}

impl LlcStats {
    /// Demand reads that hit anywhere in the LLC.
    #[must_use]
    pub fn read_hits(&self) -> u64 {
        self.base_hits + self.victim_hits
    }

    /// Counter-wise difference `self - snapshot`, for excluding warmup
    /// from measurements.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `snapshot` was taken after `self`.
    #[must_use]
    pub fn since(&self, snapshot: &LlcStats) -> LlcStats {
        LlcStats {
            base_hits: self.base_hits - snapshot.base_hits,
            victim_hits: self.victim_hits - snapshot.victim_hits,
            read_misses: self.read_misses - snapshot.read_misses,
            writeback_hits: self.writeback_hits - snapshot.writeback_hits,
            writeback_misses: self.writeback_misses - snapshot.writeback_misses,
            prefetch_fills: self.prefetch_fills - snapshot.prefetch_fills,
            prefetch_hits: self.prefetch_hits - snapshot.prefetch_hits,
            demand_fills: self.demand_fills - snapshot.demand_fills,
            memory_writes: self.memory_writes - snapshot.memory_writes,
            back_invalidations: self.back_invalidations - snapshot.back_invalidations,
            migrations: self.migrations - snapshot.migrations,
            partner_evictions: self.partner_evictions - snapshot.partner_evictions,
            victim_inserts: self.victim_inserts - snapshot.victim_inserts,
            victim_insert_failures: self.victim_insert_failures - snapshot.victim_insert_failures,
        }
    }

    /// All demand reads.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.read_hits() + self.read_misses
    }

    /// Memory reads caused by demand misses plus prefetch fills.
    #[must_use]
    pub fn memory_reads(&self) -> u64 {
        self.demand_fills + self.prefetch_fills
    }

    /// Demand hit rate in [0, 1]; 0 with no reads.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.reads() == 0 {
            0.0
        } else {
            self.read_hits() as f64 / self.reads() as f64
        }
    }

    /// Fraction of demand reads served by the Victim cache, in [0, 1];
    /// 0 with no reads (and for single-tag organizations).
    #[must_use]
    pub fn victim_hit_rate(&self) -> f64 {
        if self.reads() == 0 {
            0.0
        } else {
            self.victim_hits as f64 / self.reads() as f64
        }
    }

    /// Victim lines lost without ever being read: parking attempts that
    /// found no fitting way plus compressed partners silently evicted to
    /// make room. The per-epoch delta of this is the telemetry
    /// "victim drops" series.
    #[must_use]
    pub fn victim_drops(&self) -> u64 {
        self.victim_insert_failures + self.partner_evictions
    }

    /// Folds one operation's side effects into the lifetime totals.
    pub fn absorb_effects(&mut self, effects: Effects) {
        self.memory_writes += effects.memory_writes;
        self.back_invalidations += effects.back_invalidations;
        self.migrations += effects.migrations;
        self.partner_evictions += effects.partner_evictions;
    }
}

impl fmt::Display for LlcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (hits {} + victim {}), misses {}, mem writes {}",
            self.reads(),
            self.base_hits,
            self.victim_hits,
            self.read_misses,
            self.memory_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_counters() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.misses_per_kilo_access(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CacheStats {
            read_hits: 1,
            writebacks: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            read_hits: 10,
            write_misses: 5,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.read_hits, 11);
        assert_eq!(a.write_misses, 5);
        assert_eq!(a.writebacks, 2);
        assert_eq!(a.demand_accesses(), 16);
    }

    #[test]
    fn effects_absorb_sums() {
        let mut a = Effects {
            memory_writes: 1,
            ..Effects::default()
        };
        a.absorb(Effects {
            memory_writes: 2,
            migrations: 3,
            ..Effects::default()
        });
        assert_eq!(a.memory_writes, 3);
        assert_eq!(a.migrations, 3);
    }

    #[test]
    fn llc_stats_rates() {
        let stats = LlcStats {
            base_hits: 6,
            victim_hits: 2,
            read_misses: 2,
            demand_fills: 2,
            prefetch_fills: 1,
            ..LlcStats::default()
        };
        assert_eq!(stats.read_hits(), 8);
        assert_eq!(stats.reads(), 10);
        assert_eq!(stats.memory_reads(), 3);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn victim_telemetry_rates() {
        let stats = LlcStats {
            base_hits: 6,
            victim_hits: 2,
            read_misses: 2,
            victim_insert_failures: 3,
            partner_evictions: 4,
            ..LlcStats::default()
        };
        assert!((stats.victim_hit_rate() - 0.2).abs() < 1e-12);
        assert_eq!(stats.victim_drops(), 7);
        assert_eq!(LlcStats::default().victim_hit_rate(), 0.0);
    }

    #[test]
    fn mpka_scales_by_thousand() {
        let s = CacheStats {
            read_hits: 900,
            read_misses: 100,
            ..CacheStats::default()
        };
        assert!((s.misses_per_kilo_access() - 100.0).abs() < 1e-9);
    }
}
