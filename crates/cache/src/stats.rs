//! Per-cache statistics counters.

use core::fmt;

/// Event counters maintained by every cache level.
///
/// All experiment metrics (DRAM read ratio, hit-rate guarantees, LLC access
/// counts for the energy model) are derived from these counters.
///
/// # Examples
///
/// ```
/// use bv_cache::CacheStats;
///
/// let mut stats = CacheStats::default();
/// stats.read_hits = 90;
/// stats.read_misses = 10;
/// assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read (load/ifetch) hits.
    pub read_hits: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write (store) hits.
    pub write_hits: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Prefetch requests that hit.
    pub prefetch_hits: u64,
    /// Prefetch requests that missed (and triggered fills).
    pub prefetch_misses: u64,
    /// Lines evicted (any reason).
    pub evictions: u64,
    /// Dirty evictions that produced a writeback to the next level.
    pub writebacks: u64,
    /// Lines invalidated by back-invalidation from an inclusive outer cache.
    pub back_invalidations: u64,
    /// Fill operations (lines installed).
    pub fills: u64,
}

impl CacheStats {
    /// Total demand accesses (reads + writes, excluding prefetches).
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total demand misses.
    #[must_use]
    pub fn demand_misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total demand hits.
    #[must_use]
    pub fn demand_hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Demand hit rate in [0, 1]; 0 when no accesses were recorded.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits() as f64 / total as f64
        }
    }

    /// Demand misses per kilo-access, a scale-free miss metric.
    #[must_use]
    pub fn misses_per_kilo_access(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_misses() as f64 * 1000.0 / total as f64
        }
    }

    /// Adds another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_misses += other.prefetch_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.back_invalidations += other.back_invalidations;
        self.fills += other.fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} misses {} (hit rate {:.1}%), {} writebacks",
            self.demand_hits(),
            self.demand_misses(),
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_counters() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.misses_per_kilo_access(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CacheStats {
            read_hits: 1,
            writebacks: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            read_hits: 10,
            write_misses: 5,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.read_hits, 11);
        assert_eq!(a.write_misses, 5);
        assert_eq!(a.writebacks, 2);
        assert_eq!(a.demand_accesses(), 16);
    }

    #[test]
    fn mpka_scales_by_thousand() {
        let s = CacheStats {
            read_hits: 900,
            read_misses: 100,
            ..CacheStats::default()
        };
        assert!((s.misses_per_kilo_access() - 100.0).abs() < 1e-9);
    }
}
