//! 2-bit Static Re-Reference Interval Prediction (SRRIP).

use super::ReplacementPolicy;

const MAX_RRPV: u8 = 3; // 2-bit counters

/// SRRIP-HP (hit promotion) with 2-bit re-reference prediction values, as
/// in Jaleel et al., ISCA 2010 — one of the two advanced policies the
/// paper layers Base-Victim compression on top of (Figure 10).
///
/// Lines are inserted with RRPV = 2 ("long re-reference interval"),
/// promoted to 0 on hit, and the victim is the first way with RRPV = 3
/// (aging all ways until one qualifies).
#[derive(Debug, Clone)]
pub struct Srrip {
    sets: usize,
    ways: usize,
    rrpv: Vec<u8>,
}

impl Srrip {
    /// Creates an SRRIP policy for a `sets x ways` array.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Srrip {
        Srrip {
            sets,
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
        }
    }

    /// The current RRPV of a way (0 = re-reference predicted soonest).
    #[must_use]
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.rrpv[set * self.ways + way]
    }
}

impl ReplacementPolicy for Srrip {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV - 1; // insert "long"
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0; // promote "near-immediate"
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == MAX_RRPV) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV;
    }

    fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV;
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        // Higher RRPV ranks higher; ties broken toward lower way index,
        // mirroring `victim`'s scan order.
        (u64::from(self.rrpv[set * self.ways + way]) << 32) + (self.ways - way) as u64
    }

    fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        self.rrpv[set * self.ways + way] >= MAX_RRPV - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_is_distant_but_not_immediate_victim() {
        let mut s = Srrip::new(1, 4);
        s.on_fill(0, 0);
        assert_eq!(s.rrpv(0, 0), 2);
        // Untouched ways are at RRPV 3 and evict first.
        assert_eq!(s.victim(0), 1);
    }

    #[test]
    fn hit_promotes_to_zero() {
        let mut s = Srrip::new(1, 4);
        s.on_fill(0, 2);
        s.on_hit(0, 2);
        assert_eq!(s.rrpv(0, 2), 0);
    }

    #[test]
    fn aging_elevates_everyone_until_a_victim_exists() {
        let mut s = Srrip::new(1, 2);
        s.on_fill(0, 0);
        s.on_hit(0, 0); // rrpv 0
        s.on_fill(0, 1); // rrpv 2
        let v = s.victim(0);
        assert_eq!(v, 1, "the long-interval line ages to 3 first");
        // Aging is destructive: the hit line advanced too.
        assert_eq!(s.rrpv(0, 0), 1);
    }

    #[test]
    fn scan_resilience_protects_hit_lines() {
        // SRRIP's signature: a scanned-once stream doesn't displace the
        // frequently-hit working set.
        let mut s = Srrip::new(1, 4);
        for w in 0..4 {
            s.on_fill(0, w);
        }
        s.on_hit(0, 0);
        s.on_hit(0, 1);
        // Scan: two fills displace the not-reused ways 2 and 3, not 0 or 1.
        let v1 = s.victim(0);
        assert!(v1 == 2 || v1 == 3);
        s.on_fill(0, v1);
        let v2 = s.victim(0);
        assert!(v2 == 2 || v2 == 3);
        assert_ne!(v1, v2);
    }
}
