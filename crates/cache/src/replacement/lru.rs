//! True LRU replacement.

use super::ReplacementPolicy;

/// Least-recently-used replacement, tracked with per-way use timestamps.
///
/// Used in the paper's worked examples (Sections III and IV) and available
/// as a Baseline-cache policy.
#[derive(Debug, Clone)]
pub struct Lru {
    sets: usize,
    ways: usize,
    /// `stamp[set * ways + way]`: logical time of last use (0 = never).
    stamp: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates an LRU policy for a `sets x ways` array.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Lru {
        Lru {
            sets,
            ways,
            stamp: vec![0; sets * ways],
            clock: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamp[set * self.ways + way] = self.clock;
    }

    /// The LRU-stack position of `way` within `set`: 0 = MRU.
    ///
    /// Used by tests and by the worked-example reproductions.
    #[must_use]
    pub fn stack_position(&self, set: usize, way: usize) -> usize {
        let mine = self.stamp[set * self.ways + way];
        (0..self.ways)
            .filter(|&w| self.stamp[set * self.ways + w] > mine)
            .count()
    }
}

impl ReplacementPolicy for Lru {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        (0..self.ways)
            .min_by_key(|&w| self.stamp[set * self.ways + w])
            .expect("at least one way")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamp[set * self.ways + way] = 0;
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        // Older stamp => higher rank (closer to eviction).
        u64::MAX - self.stamp[set * self.ways + way]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_least_recently_used() {
        let mut lru = Lru::new(1, 4);
        for way in 0..4 {
            lru.on_fill(0, way);
        }
        lru.on_hit(0, 0); // order now (LRU..MRU): 1, 2, 3, 0
        assert_eq!(lru.victim(0), 1);
        lru.on_hit(0, 1);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn stack_positions_order_all_ways() {
        let mut lru = Lru::new(1, 4);
        for way in 0..4 {
            lru.on_fill(0, way);
        }
        assert_eq!(lru.stack_position(0, 3), 0); // most recent fill
        assert_eq!(lru.stack_position(0, 0), 3); // oldest
    }

    #[test]
    fn invalidate_makes_way_the_victim() {
        let mut lru = Lru::new(1, 4);
        for way in 0..4 {
            lru.on_fill(0, way);
        }
        lru.on_invalidate(0, 2);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn eviction_rank_orders_oldest_highest() {
        let mut lru = Lru::new(1, 3);
        lru.on_fill(0, 0);
        lru.on_fill(0, 1);
        lru.on_fill(0, 2);
        assert!(lru.eviction_rank(0, 0) > lru.eviction_rank(0, 1));
        assert!(lru.eviction_rank(0, 1) > lru.eviction_rank(0, 2));
    }
}
