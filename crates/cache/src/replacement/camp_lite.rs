//! CAMP-style size-aware insertion (the Base-Victim paper's future work).
//!
//! Pekhimenko et al., "Exploiting Compressed Block Size as an Indicator
//! of Future Reuse" (HPCA 2015) — CAMP — observes that compressed block
//! size correlates with reuse: in many applications, small blocks carry
//! short-reuse data (counters, pointers) while full-size blocks are
//! streaming payloads. The Base-Victim paper's Section VII.C notes that
//! "our opportunistic compressed cache architecture can be adopted to
//! implement CAMP in the Baseline Cache, which could be addressed in
//! future work." This policy is that future work, simplified: SRRIP
//! aging with a size-biased insertion point (MVE-flavored), plus set
//! dueling against plain SRRIP insertion so size-blind applications are
//! not hurt.

use super::ReplacementPolicy;
use bv_compress::SegmentCount;

const MAX_RRPV: u8 = 3;
const PSEL_BITS: u32 = 10;
const PSEL_MAX: i32 = (1 << PSEL_BITS) - 1;
const LEADER_PERIOD: usize = 32;

/// SRRIP with CAMP-style size-aware insertion and set dueling.
#[derive(Debug, Clone)]
pub struct CampLite {
    sets: usize,
    ways: usize,
    rrpv: Vec<u8>,
    /// Selector: high half favors size-aware insertion.
    psel: i32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Team {
    SizeAware,
    Srrip,
    Follower,
}

impl CampLite {
    /// Creates a CAMP-lite policy for a `sets x ways` array.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> CampLite {
        CampLite {
            sets,
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
            psel: PSEL_MAX / 2,
        }
    }

    fn team(&self, set: usize) -> Team {
        match set % LEADER_PERIOD {
            0 => Team::SizeAware,
            1 => Team::Srrip,
            _ => Team::Follower,
        }
    }

    fn use_size(&self, set: usize) -> bool {
        match self.team(set) {
            Team::SizeAware => true,
            Team::Srrip => false,
            Team::Follower => self.psel >= PSEL_MAX / 2,
        }
    }

    /// Insertion RRPV for a block of the given compressed size: small
    /// blocks (predicted high reuse) insert near-immediate; full-size
    /// blocks insert distant (evict-early).
    fn insertion_rrpv(size: SegmentCount) -> u8 {
        match size.get() {
            1..=4 => 0,            // zero/tiny blocks: predicted hot
            5..=8 => MAX_RRPV - 2, // well-compressed: normal-long
            9..=15 => MAX_RRPV - 1,
            _ => MAX_RRPV, // incompressible: first eviction candidate
        }
    }

    /// Current selector value (for tests and diagnostics).
    #[must_use]
    pub fn psel(&self) -> i32 {
        self.psel
    }
}

impl ReplacementPolicy for CampLite {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        // Size-blind fill (used when the caller has no size information):
        // plain SRRIP insertion.
        self.rrpv[set * self.ways + way] = MAX_RRPV - 1;
    }

    fn on_fill_sized(&mut self, set: usize, way: usize, size: SegmentCount) {
        let rrpv = if self.use_size(set) {
            CampLite::insertion_rrpv(size)
        } else {
            MAX_RRPV - 1
        };
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_miss(&mut self, set: usize) {
        match self.team(set) {
            Team::SizeAware => self.psel = (self.psel - 1).max(0),
            Team::Srrip => self.psel = (self.psel + 1).min(PSEL_MAX),
            Team::Follower => {}
        }
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == MAX_RRPV) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV;
    }

    fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV;
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        (u64::from(self.rrpv[set * self.ways + way]) << 32) + (self.ways - way) as u64
    }

    fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        self.rrpv[set * self.ways + way] >= MAX_RRPV - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_aware_leaders_bias_by_size() {
        let mut p = CampLite::new(64, 4);
        // Set 0 is a SizeAware leader.
        p.on_fill_sized(0, 0, SegmentCount::new(1));
        p.on_fill_sized(0, 1, SegmentCount::new(16));
        assert_eq!(p.rrpv[0], 0, "tiny block inserted hot");
        assert_eq!(p.rrpv[1], MAX_RRPV, "incompressible block inserted cold");
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn srrip_leaders_ignore_size() {
        let mut p = CampLite::new(64, 4);
        // Set 1 is the SRRIP leader.
        p.on_fill_sized(1, 0, SegmentCount::new(1));
        p.on_fill_sized(1, 1, SegmentCount::new(16));
        assert_eq!(p.rrpv[4], MAX_RRPV - 1);
        assert_eq!(p.rrpv[4 + 1], MAX_RRPV - 1);
    }

    #[test]
    fn dueling_moves_followers() {
        let mut p = CampLite::new(64, 4);
        // Misses in the size-aware leader vote against size awareness.
        for _ in 0..PSEL_MAX {
            p.on_miss(0);
        }
        assert_eq!(p.psel(), 0);
        // Follower set now inserts size-blind.
        p.on_fill_sized(2, 0, SegmentCount::new(1));
        assert_eq!(p.rrpv[2 * 4], MAX_RRPV - 1);
        // Misses in the SRRIP leader vote the other way.
        for _ in 0..PSEL_MAX {
            p.on_miss(1);
        }
        p.on_fill_sized(2, 1, SegmentCount::new(1));
        assert_eq!(p.rrpv[2 * 4 + 1], 0);
    }

    #[test]
    fn unsized_fill_falls_back_to_srrip() {
        let mut p = CampLite::new(64, 4);
        p.on_fill(0, 0);
        assert_eq!(p.rrpv[0], MAX_RRPV - 1);
    }

    #[test]
    fn insertion_bands_are_monotone() {
        let mut prev = 0;
        for s in 1..=16u8 {
            let r = CampLite::insertion_rrpv(SegmentCount::new(s));
            assert!(r >= prev, "larger blocks never insert hotter");
            prev = r;
        }
    }
}
