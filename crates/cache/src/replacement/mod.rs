//! Pluggable cache replacement policies.
//!
//! The Base-Victim architecture's central guarantee is that the Baseline
//! cache runs the *unmodified* baseline replacement policy, whatever that
//! policy is. The paper evaluates with 1-bit NRU by default and shows
//! sensitivity to SRRIP and CHAR (Figure 10); LRU is used in the worked
//! examples of Sections III and IV, and random replacement in the Victim
//! cache discussion.

mod camp_lite;
mod char_lite;
mod lru;
mod nru;
mod random;
mod srrip;

pub use camp_lite::CampLite;
pub use char_lite::CharLite;
pub use lru::Lru;
pub use nru::Nru;
pub use random::Random;
pub use srrip::Srrip;

use core::fmt;

/// A per-set replacement policy over a fixed `sets x ways` tag array.
///
/// Implementations are deterministic state machines: the simulator calls
/// [`on_fill`](ReplacementPolicy::on_fill) when a line is installed,
/// [`on_hit`](ReplacementPolicy::on_hit) when a line is touched, and
/// [`victim`](ReplacementPolicy::victim) to choose a way to evict when the
/// set is full. Ways that are invalid are filled by the caller before
/// `victim` is consulted.
pub trait ReplacementPolicy: fmt::Debug {
    /// Number of sets this policy tracks.
    fn sets(&self) -> usize;

    /// Number of ways per set.
    fn ways(&self) -> usize;

    /// Records that `way` in `set` was filled with a new line.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Records a fill with the line's compressed size, for size-aware
    /// policies (CAMP). The default ignores the size and delegates to
    /// [`on_fill`](ReplacementPolicy::on_fill).
    fn on_fill_sized(&mut self, set: usize, way: usize, _size: bv_compress::SegmentCount) {
        self.on_fill(set, way);
    }

    /// Records a hit on `way` in `set`.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Chooses the way to evict from a full `set`.
    ///
    /// May mutate internal state (e.g. NRU clears reference bits when all
    /// are set; the pseudo-random policy advances its generator).
    fn victim(&mut self, set: usize) -> usize;

    /// Records that `way` in `set` was invalidated (the way becomes empty).
    ///
    /// The default implementation does nothing; age-based policies may
    /// reset per-way state.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Applies a downgrade hint: the line in `way` is predicted dead and
    /// should become an early eviction candidate.
    ///
    /// Used by hint-driven policies (CHAR receives downgrade hints on L2
    /// evictions); the default implementation ignores hints.
    fn hint_downgrade(&mut self, _set: usize, _way: usize) {}

    /// Reports a demand miss on `set` (before the fill), used by
    /// set-dueling policies to train their selector. Default: ignored.
    fn on_miss(&mut self, _set: usize) {}

    /// The relative age rank of `way` in `set`: higher means closer to
    /// eviction. Used by size-aware victim searches (ECM-style policies
    /// walk candidates from oldest to youngest). Implementations should
    /// return a value that orders the ways; exact scale is policy-specific.
    fn eviction_rank(&self, set: usize, way: usize) -> u64;

    /// Whether `way` is currently an eviction candidate under this policy
    /// (e.g. NRU reference bit clear, SRRIP RRPV saturated). Size-aware
    /// victim searches restrict themselves to candidate ways to stay
    /// faithful to the underlying policy. The default considers every way
    /// a candidate.
    fn is_eviction_candidate(&self, _set: usize, _way: usize) -> bool {
        true
    }
}

/// Selects and constructs a replacement policy.
///
/// # Examples
///
/// ```
/// use bv_cache::PolicyKind;
///
/// let policy = PolicyKind::Nru.build(2048, 16);
/// assert_eq!(policy.sets(), 2048);
/// assert_eq!(policy.ways(), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PolicyKind {
    /// True least-recently-used ordering.
    Lru,
    /// 1-bit Not-Recently-Used (the paper's default LLC policy).
    Nru,
    /// 2-bit Static Re-Reference Interval Prediction (Jaleel et al.).
    Srrip,
    /// CHAR-style 1-bit ages with set-dueling insertion and downgrade
    /// hints (simplified from Chaudhuri et al., PACT 2012).
    CharLite,
    /// CAMP-style size-aware insertion on SRRIP with set dueling
    /// (Pekhimenko et al., HPCA 2015) — the Base-Victim paper's §VII.C
    /// future work.
    CampLite,
    /// Deterministic pseudo-random victim selection.
    Random,
}

impl PolicyKind {
    /// All policy kinds, for exhaustive sweeps.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Lru,
        PolicyKind::Nru,
        PolicyKind::Srrip,
        PolicyKind::CharLite,
        PolicyKind::CampLite,
        PolicyKind::Random,
    ];

    /// Builds a policy instance for a `sets x ways` array.
    #[must_use]
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Nru => Box::new(Nru::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyKind::CharLite => Box::new(CharLite::new(sets, ways)),
            PolicyKind::CampLite => Box::new(CampLite::new(sets, ways)),
            PolicyKind::Random => Box::new(Random::new(sets, ways, RANDOM_SEED)),
        }
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Nru => "nru",
            PolicyKind::Srrip => "srrip",
            PolicyKind::CharLite => "char",
            PolicyKind::CampLite => "camp",
            PolicyKind::Random => "random",
        }
    }

    /// The names [`PolicyKind::from_name`] accepts, for error messages.
    pub const NAMES: &'static str = "lru, nru, srrip, char, camp, random";

    /// Parses a CLI/protocol policy name (inverse of [`PolicyKind::name`]).
    #[must_use]
    pub fn from_name(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.iter().copied().find(|p| p.name() == s)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every concrete policy in one enum, dispatched by `match` instead of a
/// vtable.
///
/// This is the default policy parameter of the cache organizations: call
/// sites that select a policy at runtime (`PolicyKind` from a CLI flag)
/// get static dispatch on the per-access hot path, with one branch on the
/// enum discriminant instead of an indirect call. Code that knows the
/// policy at compile time can instantiate the organizations directly with
/// a concrete policy type and skip even that branch — see
/// [`PolicyKind::dispatch`].
#[derive(Debug, Clone)]
pub enum Policy {
    /// See [`Lru`].
    Lru(Lru),
    /// See [`Nru`].
    Nru(Nru),
    /// See [`Srrip`].
    Srrip(Srrip),
    /// See [`CharLite`].
    CharLite(CharLite),
    /// See [`CampLite`].
    CampLite(CampLite),
    /// See [`Random`].
    Random(Random),
}

/// Forwards one method call to whichever concrete policy this enum holds.
macro_rules! each_policy {
    ($self:ident, $p:ident => $call:expr) => {
        match $self {
            Policy::Lru($p) => $call,
            Policy::Nru($p) => $call,
            Policy::Srrip($p) => $call,
            Policy::CharLite($p) => $call,
            Policy::CampLite($p) => $call,
            Policy::Random($p) => $call,
        }
    };
}

impl ReplacementPolicy for Policy {
    fn sets(&self) -> usize {
        each_policy!(self, p => p.sets())
    }

    fn ways(&self) -> usize {
        each_policy!(self, p => p.ways())
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        each_policy!(self, p => p.on_fill(set, way));
    }

    fn on_fill_sized(&mut self, set: usize, way: usize, size: bv_compress::SegmentCount) {
        each_policy!(self, p => p.on_fill_sized(set, way, size));
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        each_policy!(self, p => p.on_hit(set, way));
    }

    fn victim(&mut self, set: usize) -> usize {
        each_policy!(self, p => p.victim(set))
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        each_policy!(self, p => p.on_invalidate(set, way));
    }

    fn hint_downgrade(&mut self, set: usize, way: usize) {
        each_policy!(self, p => p.hint_downgrade(set, way));
    }

    fn on_miss(&mut self, set: usize) {
        each_policy!(self, p => p.on_miss(set));
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        each_policy!(self, p => p.eviction_rank(set, way))
    }

    fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        each_policy!(self, p => p.is_eviction_candidate(set, way))
    }
}

/// Monomorphic consumer of a policy chosen at runtime.
///
/// `PolicyKind` erases the concrete policy type; this visitor restores it.
/// [`PolicyKind::dispatch`] constructs the concrete policy and hands it to
/// [`visit`](PolicyVisitor::visit), which is instantiated once per policy
/// type — so whatever the visitor builds (typically a cache organization)
/// is fully monomorphized over the policy, with no boxing anywhere on its
/// hot path.
pub trait PolicyVisitor {
    /// What the visitor produces (typically `Box<dyn LlcOrganization>` or
    /// a benchmark result).
    type Out;

    /// Receives the concrete policy instance.
    fn visit<P: ReplacementPolicy + 'static>(self, policy: P) -> Self::Out;
}

impl PolicyKind {
    /// Builds the concrete policy for a `sets x ways` array and passes it
    /// to `visitor` — the monomorphic twin of [`PolicyKind::build`].
    pub fn dispatch<V: PolicyVisitor>(self, sets: usize, ways: usize, visitor: V) -> V::Out {
        match self {
            PolicyKind::Lru => visitor.visit(Lru::new(sets, ways)),
            PolicyKind::Nru => visitor.visit(Nru::new(sets, ways)),
            PolicyKind::Srrip => visitor.visit(Srrip::new(sets, ways)),
            PolicyKind::CharLite => visitor.visit(CharLite::new(sets, ways)),
            PolicyKind::CampLite => visitor.visit(CampLite::new(sets, ways)),
            PolicyKind::Random => visitor.visit(Random::new(sets, ways, RANDOM_SEED)),
        }
    }

    /// Builds the enum-dispatched [`Policy`] for a `sets x ways` array.
    ///
    /// Same construction as [`PolicyKind::build`] (identical seeds and
    /// initial state) without the allocation or the vtable.
    #[must_use]
    pub fn instantiate(self, sets: usize, ways: usize) -> Policy {
        match self {
            PolicyKind::Lru => Policy::Lru(Lru::new(sets, ways)),
            PolicyKind::Nru => Policy::Nru(Nru::new(sets, ways)),
            PolicyKind::Srrip => Policy::Srrip(Srrip::new(sets, ways)),
            PolicyKind::CharLite => Policy::CharLite(CharLite::new(sets, ways)),
            PolicyKind::CampLite => Policy::CampLite(CampLite::new(sets, ways)),
            PolicyKind::Random => Policy::Random(Random::new(sets, ways, RANDOM_SEED)),
        }
    }
}

/// Seed for [`PolicyKind::Random`] construction, shared by every
/// construction path so `build`, `instantiate`, and `dispatch` produce
/// identical victim streams.
const RANDOM_SEED: u64 = 0x9e37_79b9;

#[cfg(test)]
mod tests {
    use super::*;

    /// Every policy must return an in-range victim and prefer a line that
    /// was never touched over the line that was just filled and hit.
    #[test]
    fn policies_return_valid_victims() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build(4, 8);
            for way in 0..8 {
                p.on_fill(1, way);
            }
            let v = p.victim(1);
            assert!(v < 8, "{kind}: victim way {v} out of range");
        }
    }

    #[test]
    fn recency_policies_protect_the_mru_line() {
        for kind in [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Srrip] {
            let mut p = kind.build(1, 4);
            for way in 0..4 {
                p.on_fill(0, way);
            }
            p.on_hit(0, 3);
            // Several consecutive victim choices should avoid the MRU way
            // as long as other candidates exist.
            let v = p.victim(0);
            assert_ne!(v, 3, "{kind}: evicted the most recently used line");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyKind::Nru.to_string(), "nru");
        assert_eq!(PolicyKind::CharLite.name(), "char");
    }
}
