//! Deterministic pseudo-random replacement.

use super::ReplacementPolicy;

/// Pseudo-random victim selection using an xorshift64* generator.
///
/// The paper uses random replacement in the Victim cache for its worked
/// examples (Section IV.B). A fixed seed keeps whole-simulation runs
/// reproducible.
#[derive(Debug, Clone)]
pub struct Random {
    sets: usize,
    ways: usize,
    state: u64,
}

impl Random {
    /// Creates a random policy with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0.
    #[must_use]
    pub fn new(sets: usize, ways: usize, seed: u64) -> Random {
        assert!(ways > 0, "at least one way required");
        Random {
            sets,
            ways,
            state: seed | 1, // xorshift state must be nonzero
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* (Vigna) — small, fast, and deterministic.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ReplacementPolicy for Random {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        (self.next() % self.ways as u64) as usize
    }

    fn eviction_rank(&self, _set: usize, way: usize) -> u64 {
        // No recency information: rank by way index for determinism.
        way as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_in_range_and_cover_ways() {
        let mut r = Random::new(1, 8, 42);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.victim(0);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 draws should cover all 8 ways: {seen:?}"
        );
    }

    #[test]
    fn sequences_are_reproducible() {
        let mut a = Random::new(1, 16, 7);
        let mut b = Random::new(1, 16, 7);
        for _ in 0..64 {
            assert_eq!(a.victim(0), b.victim(0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Random::new(1, 16, 1);
        let mut b = Random::new(1, 16, 2);
        let sa: Vec<usize> = (0..32).map(|_| a.victim(0)).collect();
        let sb: Vec<usize> = (0..32).map(|_| b.victim(0)).collect();
        assert_ne!(sa, sb);
    }
}
