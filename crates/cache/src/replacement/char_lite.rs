//! CHAR-style hierarchy-aware replacement (simplified).
//!
//! Chaudhuri et al., "Introducing Hierarchy-awareness in Replacement and
//! Bypass Algorithms for Last-level Caches" (PACT 2012) — "CHAR" — learns
//! per-workload reuse behavior with set dueling and sends *downgrade hints*
//! to the LLC on L2 evictions. The Base-Victim paper evaluates CHAR "with
//! 1 bit ages and not on top of SRRIP" (Section VI.B.2).
//!
//! This reproduction keeps the two load-bearing ingredients:
//!
//! 1. **1-bit ages with dueling insertion**: leader sets insert lines
//!    either referenced (protected) or unreferenced (evict-early); a PSEL
//!    counter trained by leader-set misses picks the winner for follower
//!    sets — the classic DIP mechanism applied to 1-bit NRU ages.
//! 2. **Downgrade hints**: [`ReplacementPolicy::hint_downgrade`] clears a
//!    line's age bit, making it the preferred victim; the simulator calls
//!    this when the L2 evicts a clean line that CHAR predicts dead.

use super::ReplacementPolicy;

const PSEL_BITS: u32 = 10;
const PSEL_MAX: i32 = (1 << PSEL_BITS) - 1;
const LEADER_PERIOD: usize = 32; // 1 in 32 sets leads each team

/// Simplified CHAR: 1-bit NRU ages + set-dueling insertion + hints.
#[derive(Debug, Clone)]
pub struct CharLite {
    sets: usize,
    ways: usize,
    referenced: Vec<bool>,
    /// Policy selector: high half favors protected insertion.
    psel: i32,
}

/// The insertion behavior a set uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Team {
    /// Always insert protected (reference bit set).
    Protect,
    /// Always insert unprotected (reference bit clear).
    EvictEarly,
    /// Use whichever team PSEL currently favors.
    Follower,
}

impl CharLite {
    /// Creates a CHAR-lite policy for a `sets x ways` array.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> CharLite {
        CharLite {
            sets,
            ways,
            referenced: vec![false; sets * ways],
            psel: PSEL_MAX / 2,
        }
    }

    fn team(&self, set: usize) -> Team {
        // Interleave leader sets through the index space.
        match set % LEADER_PERIOD {
            0 => Team::Protect,
            1 => Team::EvictEarly,
            _ => Team::Follower,
        }
    }

    fn insert_protected(&self, set: usize) -> bool {
        match self.team(set) {
            Team::Protect => true,
            Team::EvictEarly => false,
            Team::Follower => self.psel >= PSEL_MAX / 2,
        }
    }

    fn set_bit(&mut self, set: usize, way: usize, value: bool) {
        self.referenced[set * self.ways + way] = value;
        if value {
            let base = set * self.ways;
            if self.referenced[base..base + self.ways].iter().all(|&b| b) {
                for w in 0..self.ways {
                    self.referenced[base + w] = w == way;
                }
            }
        }
    }

    /// Current selector value (for tests and diagnostics).
    #[must_use]
    pub fn psel(&self) -> i32 {
        self.psel
    }
}

impl ReplacementPolicy for CharLite {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        let protected = self.insert_protected(set);
        self.set_bit(set, way, protected);
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.set_bit(set, way, true);
    }

    fn on_miss(&mut self, set: usize) {
        // A miss in a leader set is a vote against that leader's team.
        match self.team(set) {
            Team::Protect => self.psel = (self.psel - 1).max(0),
            Team::EvictEarly => self.psel = (self.psel + 1).min(PSEL_MAX),
            Team::Follower => {}
        }
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .find(|&w| !self.referenced[base + w])
            .unwrap_or(0)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        let referenced = self.referenced[set * self.ways + way];
        let class = if referenced { 0u64 } else { 1 << 32 };
        class + (self.ways - way) as u64
    }

    fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        !self.referenced[set * self.ways + way]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_sets_are_assigned_both_teams() {
        let p = CharLite::new(64, 4);
        assert_eq!(p.team(0), Team::Protect);
        assert_eq!(p.team(1), Team::EvictEarly);
        assert_eq!(p.team(2), Team::Follower);
        assert_eq!(p.team(32), Team::Protect);
    }

    #[test]
    fn psel_trains_toward_the_winning_team() {
        let mut p = CharLite::new(64, 4);
        let start = p.psel();
        // Misses in the Protect leader vote against protection.
        for _ in 0..100 {
            p.on_miss(0);
        }
        assert!(p.psel() < start);
        for _ in 0..300 {
            p.on_miss(1);
        }
        assert!(p.psel() > start);
    }

    #[test]
    fn evict_early_leader_inserts_unprotected() {
        let mut p = CharLite::new(64, 4);
        p.on_fill(1, 0); // set 1: EvictEarly leader
        assert_eq!(p.victim(1), 0, "unprotected insertion is first victim");
        p.on_fill(0, 0); // set 0: Protect leader
        assert_ne!(p.victim(0), 0, "protected insertion is not first victim");
    }

    #[test]
    fn followers_obey_psel() {
        let mut p = CharLite::new(64, 4);
        // Drive PSEL to favor EvictEarly.
        for _ in 0..PSEL_MAX {
            p.on_miss(0);
        }
        p.on_fill(2, 1); // follower set
        assert_eq!(p.victim(2), 0, "unused way 0 still preferred");
        // Fill every way; none protected, so way 0 remains victim.
        for w in 0..4 {
            p.on_fill(2, w);
        }
        assert_eq!(p.victim(2), 0);
    }

    #[test]
    fn hints_downgrade_lines() {
        let mut p = CharLite::new(64, 4);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.hint_downgrade(0, 0);
        assert_eq!(p.victim(0), 0);
    }
}
