//! 1-bit Not-Recently-Used replacement — the paper's default LLC policy.

use super::ReplacementPolicy;

/// 1-bit NRU: each way has a reference bit, set on fill and on hit. The
/// victim is the first way (lowest index) whose bit is clear; when every
/// bit in a set becomes set, all bits except the most recent toucher are
/// cleared.
///
/// This matches the policy described in Gaur et al. (ISCA 2011), cited by
/// the paper as its LLC replacement policy ("1-bit Not Recently Used").
#[derive(Debug, Clone)]
pub struct Nru {
    sets: usize,
    ways: usize,
    referenced: Vec<bool>,
}

impl Nru {
    /// Creates an NRU policy for a `sets x ways` array.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Nru {
        Nru {
            sets,
            ways,
            referenced: vec![false; sets * ways],
        }
    }

    fn set_bit(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = true;
        // If all bits are now set, clear everyone else so future victims
        // exist (standard NRU aging).
        let base = set * self.ways;
        if self.referenced[base..base + self.ways].iter().all(|&b| b) {
            for w in 0..self.ways {
                self.referenced[base + w] = w == way;
            }
        }
    }

    /// Whether `way`'s reference bit is currently set.
    #[must_use]
    pub fn is_referenced(&self, set: usize, way: usize) -> bool {
        self.referenced[set * self.ways + way]
    }
}

impl ReplacementPolicy for Nru {
    fn sets(&self) -> usize {
        self.sets
    }

    fn ways(&self) -> usize {
        self.ways
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.set_bit(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.set_bit(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .find(|&w| !self.referenced[base + w])
            .unwrap_or(0)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn hint_downgrade(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn eviction_rank(&self, set: usize, way: usize) -> u64 {
        // Non-referenced ways rank higher (evict sooner); within a class,
        // lower way index is searched first, mirroring `victim`.
        let referenced = self.referenced[set * self.ways + way];
        let class = if referenced { 0u64 } else { 1 << 32 };
        class + (self.ways - way) as u64
    }

    fn is_eviction_candidate(&self, set: usize, way: usize) -> bool {
        !self.referenced[set * self.ways + way]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_first_unreferenced_way() {
        let mut nru = Nru::new(1, 4);
        nru.on_fill(0, 0);
        nru.on_fill(0, 1);
        // Ways 2 and 3 never touched: way 2 is the first candidate.
        assert_eq!(nru.victim(0), 2);
    }

    #[test]
    fn saturation_clears_other_bits() {
        let mut nru = Nru::new(1, 4);
        for way in 0..4 {
            nru.on_fill(0, way);
        }
        // Filling way 3 saturated the set: all bits cleared except way 3.
        assert!(nru.is_referenced(0, 3));
        for way in 0..3 {
            assert!(!nru.is_referenced(0, way), "way {way} should be aged");
        }
        assert_eq!(nru.victim(0), 0);
    }

    #[test]
    fn hint_downgrade_clears_reference_bit() {
        let mut nru = Nru::new(1, 4);
        nru.on_fill(0, 0);
        nru.on_fill(0, 1);
        nru.hint_downgrade(0, 1);
        assert_eq!(nru.victim(0), 1);
    }

    #[test]
    fn eviction_rank_prefers_unreferenced() {
        let mut nru = Nru::new(1, 4);
        nru.on_fill(0, 0);
        assert!(nru.eviction_rank(0, 1) > nru.eviction_rank(0, 0));
        // Among unreferenced ways, lower index ranks higher.
        assert!(nru.eviction_rank(0, 1) > nru.eviction_rank(0, 2));
    }
}
