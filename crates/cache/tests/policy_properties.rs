//! Property tests for the replacement policies: every policy must stay
//! within bounds, and LRU must agree with a straightforward reference
//! model under arbitrary access interleavings.

use bv_cache::replacement::Lru;
use bv_cache::{PolicyKind, ReplacementPolicy};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum PolicyOp {
    Fill(u8),
    Hit(u8),
    Victim,
    Invalidate(u8),
    Hint(u8),
    Miss,
}

fn op_strategy(ways: u8) -> impl Strategy<Value = PolicyOp> {
    (0..6u8, 0..ways).prop_map(|(k, w)| match k {
        0 => PolicyOp::Fill(w),
        1 => PolicyOp::Hit(w),
        2 => PolicyOp::Victim,
        3 => PolicyOp::Invalidate(w),
        4 => PolicyOp::Hint(w),
        _ => PolicyOp::Miss,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Victims are always in range and eviction ranks order all ways, for
    /// every policy, under arbitrary operation sequences.
    #[test]
    fn policies_stay_in_bounds(
        ops in prop::collection::vec(op_strategy(8), 1..300),
        kind in prop::sample::select(PolicyKind::ALL.to_vec()),
    ) {
        let mut p = kind.build(4, 8);
        for op in ops {
            match op {
                PolicyOp::Fill(w) => p.on_fill(2, w as usize),
                PolicyOp::Hit(w) => p.on_hit(2, w as usize),
                PolicyOp::Victim => {
                    let v = p.victim(2);
                    prop_assert!(v < 8, "{kind}: victim {v} out of range");
                }
                PolicyOp::Invalidate(w) => p.on_invalidate(2, w as usize),
                PolicyOp::Hint(w) => p.hint_downgrade(2, w as usize),
                PolicyOp::Miss => p.on_miss(2),
            }
            for w in 0..8 {
                let _ = p.eviction_rank(2, w);
                let _ = p.is_eviction_candidate(2, w);
            }
        }
    }

    /// LRU agrees with a reference model (a recency-ordered list).
    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec(op_strategy(4), 1..200),
    ) {
        let mut lru = Lru::new(1, 4);
        let mut reference: Vec<usize> = Vec::new(); // front = LRU, back = MRU
        let touch = |reference: &mut Vec<usize>, w: usize| {
            reference.retain(|&x| x != w);
            reference.push(w);
        };
        for op in ops {
            match op {
                PolicyOp::Fill(w) | PolicyOp::Hit(w) => {
                    let w = (w % 4) as usize;
                    lru.on_fill(0, w);
                    touch(&mut reference, w);
                }
                PolicyOp::Victim => {
                    if reference.len() == 4 {
                        // Only meaningful when every way has a defined
                        // recency; otherwise untouched ways win arbitrarily.
                        prop_assert_eq!(lru.victim(0), reference[0]);
                    }
                }
                PolicyOp::Invalidate(w) => {
                    let w = (w % 4) as usize;
                    lru.on_invalidate(0, w);
                    reference.retain(|&x| x != w);
                }
                PolicyOp::Hint(_) | PolicyOp::Miss => {}
            }
        }
        // Stack positions must match the reference ordering exactly when
        // all ways have been touched.
        if reference.len() == 4 {
            for (depth, &w) in reference.iter().rev().enumerate() {
                prop_assert_eq!(lru.stack_position(0, w), depth);
            }
        }
    }

    /// SRRIP victims always have maximal RRPV among valid candidates at
    /// selection time.
    #[test]
    fn srrip_victim_has_max_rrpv(
        ops in prop::collection::vec(op_strategy(8), 1..200),
    ) {
        use bv_cache::replacement::Srrip;
        let mut p = Srrip::new(1, 8);
        for op in ops {
            match op {
                PolicyOp::Fill(w) => p.on_fill(0, w as usize),
                PolicyOp::Hit(w) => p.on_hit(0, w as usize),
                PolicyOp::Victim => {
                    let v = p.victim(0);
                    let max = (0..8).map(|w| p.rrpv(0, w)).max().expect("8 ways");
                    prop_assert_eq!(p.rrpv(0, v), max);
                    prop_assert_eq!(max, 3, "victim selection ages until an RRPV-3 way exists");
                }
                _ => {}
            }
        }
    }
}
