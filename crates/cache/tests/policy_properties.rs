//! Property tests for the replacement policies: every policy must stay
//! within bounds, and LRU must agree with a straightforward reference
//! model under arbitrary access interleavings.

use bv_cache::replacement::Lru;
use bv_cache::{PolicyKind, ReplacementPolicy};
use bv_testkit::{cases, Rng};

#[derive(Clone, Copy, Debug)]
enum PolicyOp {
    Fill(u8),
    Hit(u8),
    Victim,
    Invalidate(u8),
    Hint(u8),
    Miss,
}

fn random_op(rng: &mut Rng, ways: u8) -> PolicyOp {
    let w = rng.below(u64::from(ways)) as u8;
    match rng.below(6) {
        0 => PolicyOp::Fill(w),
        1 => PolicyOp::Hit(w),
        2 => PolicyOp::Victim,
        3 => PolicyOp::Invalidate(w),
        4 => PolicyOp::Hint(w),
        _ => PolicyOp::Miss,
    }
}

fn random_ops(rng: &mut Rng, ways: u8, max_len: usize) -> Vec<PolicyOp> {
    let len = rng.range_u64(1, max_len as u64) as usize;
    rng.vec_of(len, |r| random_op(r, ways))
}

/// Victims are always in range and eviction ranks order all ways, for
/// every policy, under arbitrary operation sequences.
#[test]
fn policies_stay_in_bounds() {
    cases(128, |rng| {
        let ops = random_ops(rng, 8, 300);
        let kind = *rng.choose(&PolicyKind::ALL);
        let mut p = kind.build(4, 8);
        for op in ops {
            match op {
                PolicyOp::Fill(w) => p.on_fill(2, w as usize),
                PolicyOp::Hit(w) => p.on_hit(2, w as usize),
                PolicyOp::Victim => {
                    let v = p.victim(2);
                    assert!(v < 8, "{kind}: victim {v} out of range");
                }
                PolicyOp::Invalidate(w) => p.on_invalidate(2, w as usize),
                PolicyOp::Hint(w) => p.hint_downgrade(2, w as usize),
                PolicyOp::Miss => p.on_miss(2),
            }
            for w in 0..8 {
                let _ = p.eviction_rank(2, w);
                let _ = p.is_eviction_candidate(2, w);
            }
        }
    });
}

/// LRU agrees with a reference model (a recency-ordered list).
#[test]
fn lru_matches_reference_model() {
    cases(128, |rng| {
        let ops = random_ops(rng, 4, 200);
        let mut lru = Lru::new(1, 4);
        let mut reference: Vec<usize> = Vec::new(); // front = LRU, back = MRU
        let touch = |reference: &mut Vec<usize>, w: usize| {
            reference.retain(|&x| x != w);
            reference.push(w);
        };
        for op in ops {
            match op {
                PolicyOp::Fill(w) | PolicyOp::Hit(w) => {
                    let w = (w % 4) as usize;
                    lru.on_fill(0, w);
                    touch(&mut reference, w);
                }
                PolicyOp::Victim => {
                    if reference.len() == 4 {
                        // Only meaningful when every way has a defined
                        // recency; otherwise untouched ways win arbitrarily.
                        assert_eq!(lru.victim(0), reference[0]);
                    }
                }
                PolicyOp::Invalidate(w) => {
                    let w = (w % 4) as usize;
                    lru.on_invalidate(0, w);
                    reference.retain(|&x| x != w);
                }
                PolicyOp::Hint(_) | PolicyOp::Miss => {}
            }
        }
        // Stack positions must match the reference ordering exactly when
        // all ways have been touched.
        if reference.len() == 4 {
            for (depth, &w) in reference.iter().rev().enumerate() {
                assert_eq!(lru.stack_position(0, w), depth);
            }
        }
    });
}

/// SRRIP victims always have maximal RRPV among valid candidates at
/// selection time.
#[test]
fn srrip_victim_has_max_rrpv() {
    cases(128, |rng| {
        use bv_cache::replacement::Srrip;
        let ops = random_ops(rng, 8, 200);
        let mut p = Srrip::new(1, 8);
        for op in ops {
            match op {
                PolicyOp::Fill(w) => p.on_fill(0, w as usize),
                PolicyOp::Hit(w) => p.on_hit(0, w as usize),
                PolicyOp::Victim => {
                    let v = p.victim(0);
                    let max = (0..8).map(|w| p.rrpv(0, w)).max().expect("8 ways");
                    assert_eq!(p.rrpv(0, v), max);
                    assert_eq!(max, 3, "victim selection ages until an RRPV-3 way exists");
                }
                _ => {}
            }
        }
    });
}
