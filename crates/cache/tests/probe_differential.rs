//! Differential property test for the structure-of-arrays probe: over
//! thousands of fuzzed set states, `SetEngine::find` (the bitmask scan
//! over the SoA tag rows) must return the identical `(way, hit/miss)`
//! answer as both the retained scalar `find_reference` walk and an
//! independent shadow model that never touches the engine's layout.

use bv_cache::engine::{SetEngine, SlotMeta};
use bv_cache::PolicyKind;
use bv_compress::SegmentCount;
use bv_testkit::{cases, Rng};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta(u32);

impl SlotMeta for Meta {
    fn empty() -> Meta {
        Meta(0)
    }
}

/// The shadow model: per-set slots as plain `Option<u64>` tags, updated
/// alongside the engine with the same install/invalidate stream.
struct Shadow {
    ways: usize,
    slots: Vec<Option<u64>>,
}

impl Shadow {
    fn new(sets: usize, ways: usize) -> Shadow {
        Shadow {
            ways,
            slots: vec![None; sets * ways],
        }
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        (0..self.ways).find(|&w| self.slots[set * self.ways + w] == Some(tag))
    }
}

/// Builds a random engine/shadow pair: a churn of installs and
/// invalidations, with tags drawn from a small pool so stale tags of
/// invalidated slots frequently collide with live probes.
fn churn(rng: &mut Rng, sets: usize, ways: usize) -> (SetEngine<bv_cache::Policy, Meta>, Shadow) {
    let mut engine: SetEngine<bv_cache::Policy, Meta> =
        SetEngine::new(sets, ways, PolicyKind::Lru.instantiate(sets, ways));
    let mut shadow = Shadow::new(sets, ways);
    let tag_pool: Vec<u64> = (0..16).map(|_| rng.next_u64() | 1).collect();
    let ops = rng.range_u64(1, (sets * ways * 2) as u64);
    for _ in 0..ops {
        let set = rng.below(sets as u64) as usize;
        let way = rng.below(ways as u64) as usize;
        if rng.below(4) == 0 {
            if engine.slot(set, way).valid {
                engine.invalidate(set, way);
            }
            shadow.slots[set * ways + way] = None;
        } else {
            let tag = *rng.choose(&tag_pool);
            // Engines never hold one tag twice in a set; skip duplicates.
            if shadow.find(set, tag).is_some() {
                continue;
            }
            if engine.slot(set, way).valid {
                engine.invalidate(set, way);
            }
            engine.install(
                set,
                way,
                tag,
                Meta(rng.next_u64() as u32),
                SegmentCount::FULL,
            );
            shadow.slots[set * ways + way] = Some(tag);
        }
    }
    (engine, shadow)
}

/// 10_000 fuzzed set states: every probe agrees across the SoA bitmask
/// scan, the scalar reference walk, and the shadow model — both on the
/// hit/miss verdict and on the way index.
#[test]
fn soa_probe_matches_reference_walk_and_shadow_model() {
    cases(10_000, |rng| {
        let sets = 1 << rng.below(4); // 1..8 sets
        let ways = *rng.choose(&[1usize, 2, 4, 7, 16, 32]);
        let (engine, shadow) = churn(rng, sets, ways);
        let tag_pool: Vec<u64> = (0..8)
            .map(|_| rng.next_u64() | 1)
            .chain((0..sets * ways).filter_map(|i| shadow.slots[i]).take(8))
            .collect();
        for _ in 0..32 {
            let set = rng.below(sets as u64) as usize;
            let tag = *rng.choose(&tag_pool);
            let got = engine.find(set, tag);
            assert_eq!(
                got,
                engine.find_reference(set, tag),
                "bitmask scan vs scalar walk, set {set} tag {tag:#x}"
            );
            assert_eq!(
                got,
                shadow.find(set, tag),
                "engine vs shadow model, set {set} tag {tag:#x}"
            );
        }
        // The aggregate views must agree with the shadow too.
        assert_eq!(
            engine.valid_count(),
            shadow.slots.iter().filter(|s| s.is_some()).count()
        );
        for (set, way, slot) in engine.iter_valid() {
            assert_eq!(shadow.slots[set * ways + way], Some(slot.tag));
        }
    });
}

/// Invalidated slots must never hit, even though the SoA probe reads
/// every tag word in the row unconditionally: the validity mask, not the
/// tag word, is authoritative. Invalidation zeroes the tag word, so the
/// zero-tag probe is the case where a mask bug would show.
#[test]
fn invalidated_slots_never_hit() {
    cases(1_000, |rng| {
        let ways = *rng.choose(&[2usize, 8, 32]);
        let mut engine: SetEngine<bv_cache::Policy, Meta> =
            SetEngine::new(1, ways, PolicyKind::Lru.instantiate(1, ways));
        let tag = rng.next_u64() | 1;
        let way = rng.below(ways as u64) as usize;
        engine.install(0, way, tag, Meta(7), SegmentCount::FULL);
        assert_eq!(engine.find(0, tag), Some(way));
        engine.invalidate(0, way);
        assert_eq!(engine.find(0, tag), None);
        assert_eq!(engine.find_reference(0, tag), None);
        // The cleared tag word is 0; a zero-tag probe must still miss on
        // every invalid slot.
        assert_eq!(engine.find(0, 0), None);
        assert_eq!(engine.find_reference(0, 0), None);
    });
}
