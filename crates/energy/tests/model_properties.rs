//! Black-box properties of the energy model: every component is a
//! non-negative, monotone function of the event counts it charges for.
//!
//! The inline unit tests cover the Figure 14 *conclusions* (compression
//! saves energy, word enables matter); these tests pin the model's
//! *shape*, so a constants or mapping change that silently flips a sign
//! or drops a term fails here even if the headline ratios survive.

use bv_energy::{EnergyBreakdown, EnergyModel, LlcEnergyClass};
use bv_sim::{LlcKind, RunResult, SimConfig, System};

/// One monotonicity probe: a counter's name and the bump applied to it.
type Bump = (&'static str, fn(&mut RunResult));
use bv_trace::synth::{KernelSpec, WorkloadSpec};
use bv_trace::{DataProfile, KernelKind};

const ALL_CLASSES: [LlcEnergyClass; 5] = [
    LlcEnergyClass::Uncompressed,
    LlcEnergyClass::TwoTag { word_enables: true },
    LlcEnergyClass::TwoTag {
        word_enables: false,
    },
    LlcEnergyClass::BaseVictim { word_enables: true },
    LlcEnergyClass::BaseVictim {
        word_enables: false,
    },
];

/// A short real run so the counters carry realistic proportions.
fn sample_run(kind: LlcKind, profile: DataProfile) -> RunResult {
    let workload = WorkloadSpec {
        kernels: vec![KernelSpec {
            kind: KernelKind::Loop,
            region_bytes: 256 << 10,
            weight: 1,
            store_fraction: 40,
            profile,
        }],
        mem_fraction: 90,
        ifetch_fraction: 8,
        code_bytes: 16 << 10,
        seed: 17,
    };
    let cfg = SimConfig::single_thread(kind).with_llc_size(128 * 1024, 8);
    System::new(cfg).run(&workload, 60_000)
}

fn parts(e: &EnergyBreakdown) -> [f64; 5] {
    [
        e.dram_dynamic_nj,
        e.dram_background_nj,
        e.llc_dynamic_nj,
        e.llc_leakage_nj,
        e.codec_nj,
    ]
}

#[test]
fn every_component_is_nonnegative_for_every_class() {
    let model = EnergyModel::paper_default();
    for profile in [
        DataProfile::Zero,
        DataProfile::PointerLike,
        DataProfile::Random,
    ] {
        let run = sample_run(LlcKind::BaseVictim, profile);
        for class in ALL_CLASSES {
            let e = model.evaluate(&run, class);
            for (i, part) in parts(&e).into_iter().enumerate() {
                assert!(
                    part >= 0.0 && part.is_finite(),
                    "{class:?} {profile:?}: component {i} is {part}"
                );
            }
            assert!(e.total_nj() > 0.0, "{class:?}: a real run consumed energy");
        }
    }
}

#[test]
fn energy_is_monotone_in_access_counts() {
    let model = EnergyModel::paper_default();
    let base = sample_run(LlcKind::BaseVictim, DataProfile::PointerLike);
    for class in ALL_CLASSES {
        let before = model.evaluate(&base, class).total_nj();
        // Bump each charged counter independently; none may *reduce*
        // total energy, and each must strictly increase some component
        // the class charges for.
        let bumps: [Bump; 6] = [
            ("base_hits", |r| r.llc.base_hits += 10_000),
            ("demand_fills", |r| r.llc.demand_fills += 10_000),
            ("writeback_hits", |r| r.llc.writeback_hits += 10_000),
            ("migrations", |r| r.llc.migrations += 10_000),
            ("dram reads", |r| r.dram.reads += 10_000),
            ("dram writes", |r| r.dram.writes += 10_000),
        ];
        for (name, bump) in bumps {
            let mut grown = base.clone();
            bump(&mut grown);
            let after = model.evaluate(&grown, class).total_nj();
            assert!(
                after > before,
                "{class:?}: +10k {name} moved total {before:.1} -> {after:.1} nJ"
            );
        }
    }
}

#[test]
fn background_terms_scale_with_cycles() {
    let model = EnergyModel::paper_default();
    let base = sample_run(LlcKind::Uncompressed, DataProfile::SmallInt);
    let mut longer = base.clone();
    longer.cycles *= 2;
    let short = model.evaluate(&base, LlcEnergyClass::Uncompressed);
    let long = model.evaluate(&longer, LlcEnergyClass::Uncompressed);
    assert!((long.dram_background_nj / short.dram_background_nj - 2.0).abs() < 1e-9);
    assert!((long.llc_leakage_nj / short.llc_leakage_nj - 2.0).abs() < 1e-9);
    // Dynamic terms depend only on counts, not on elapsed time.
    assert_eq!(long.dram_dynamic_nj, short.dram_dynamic_nj);
    assert_eq!(long.llc_dynamic_nj, short.llc_dynamic_nj);
}

#[test]
fn ratio_of_a_breakdown_to_itself_is_one() {
    let model = EnergyModel::paper_default();
    let run = sample_run(LlcKind::BaseVictim, DataProfile::Clustered);
    let e = model.evaluate(&run, LlcEnergyClass::BaseVictim { word_enables: true });
    assert!((e.ratio(&e) - 1.0).abs() < 1e-12);
}

#[test]
fn compressed_classes_never_undercut_uncompressed_on_the_same_run() {
    // On *identical* counters the compressed classes only add terms
    // (extra tag energy, codec, leakage scale), so each must cost at
    // least as much as the uncompressed mapping of the same run. The
    // savings in Figure 14 come from compression *changing* the
    // counters (fewer DRAM reads), not from the mapping itself.
    let model = EnergyModel::paper_default();
    let run = sample_run(LlcKind::BaseVictim, DataProfile::PointerLike);
    let unc = model
        .evaluate(&run, LlcEnergyClass::Uncompressed)
        .total_nj();
    for class in ALL_CLASSES {
        let e = model.evaluate(&run, class).total_nj();
        assert!(
            e >= unc,
            "{class:?}: {e:.1} nJ undercuts uncompressed {unc:.1} nJ on equal counters"
        );
    }
}
