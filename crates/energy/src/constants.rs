//! Per-event energy constants.
//!
//! The paper sources its numbers from the Micron DDR3 power calculator,
//! CACTI 6.0 (22 nm), and the Warped-Compression BDI implementation. The
//! constants below are of the same order of magnitude as those tools'
//! published outputs for a 2 MB SRAM LLC and a 2-channel DDR3-1600 system;
//! Figure 14 reports energy *ratios*, which depend on the relative event
//! costs rather than absolute joules.

/// All energy/power constants used by the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyConstants {
    /// Core frequency in Hz (converts cycles to seconds).
    pub core_hz: f64,
    /// Energy per 64 B DRAM read, in nJ (activate amortized + read + IO).
    pub dram_read_nj: f64,
    /// Energy per 64 B DRAM write, in nJ.
    pub dram_write_nj: f64,
    /// DRAM background (standby/refresh) power across both channels, W.
    pub dram_background_w: f64,
    /// Energy per LLC tag-array lookup (16-way compare), nJ.
    pub llc_tag_nj: f64,
    /// Additional tag energy when tags are doubled, as a fraction of the
    /// baseline tag energy.
    pub extra_tag_energy_fraction: f64,
    /// Energy per LLC data-array 64 B read, nJ.
    pub llc_data_read_nj: f64,
    /// Energy per LLC data-array 64 B write, nJ.
    pub llc_data_write_nj: f64,
    /// LLC leakage power (2 MB at 22 nm), W.
    pub llc_leakage_w: f64,
    /// Extra leakage fraction from the added tags + codec area (Section
    /// IV.C: 8.5%).
    pub compressed_area_overhead: f64,
    /// Energy per BDI line compression, nJ.
    pub compress_nj: f64,
    /// Energy per BDI line decompression, nJ.
    pub decompress_nj: f64,
}

impl EnergyConstants {
    /// The default constants (see module docs for provenance).
    #[must_use]
    pub fn paper_default() -> EnergyConstants {
        EnergyConstants {
            core_hz: 4.0e9,
            dram_read_nj: 22.0,
            dram_write_nj: 24.0,
            dram_background_w: 0.55,
            llc_tag_nj: 0.04,
            extra_tag_energy_fraction: 0.9,
            llc_data_read_nj: 0.55,
            llc_data_write_nj: 0.60,
            llc_leakage_w: 0.16,
            compressed_area_overhead: 0.085,
            compress_nj: 0.08,
            decompress_nj: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered() {
        let c = EnergyConstants::paper_default();
        assert!(c.dram_read_nj > c.llc_data_read_nj * 10.0, "DRAM >> SRAM");
        assert!(c.llc_data_read_nj > c.llc_tag_nj, "data array > tag array");
        assert!(c.compress_nj < c.llc_data_read_nj, "codec is small logic");
        assert!(c.compressed_area_overhead > 0.0 && c.compressed_area_overhead < 0.1);
    }
}
