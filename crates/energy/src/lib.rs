//! Analytical energy model for the memory + cache subsystem (Section VI.D
//! / Figure 14).
//!
//! The paper estimates power with the Micron DDR3 power calculator (DRAM),
//! CACTI 6.0 at 22 nm (LLC tag/state SRAM), and BDI codec numbers scaled
//! from Warped-Compression (ISCA 2015). None of those tools is available
//! here, so this crate embeds per-event energy constants of the same order
//! of magnitude (documented in [`constants`]) and reproduces the *ratio*
//! analysis of Figure 14: compression saves energy in proportion to the
//! DRAM read traffic it eliminates, pays for extra tags, migrations and
//! codec work, and loses most of its savings when the SRAM lacks word
//! enables and every fill/writeback becomes a read-modify-write.
//!
//! # Examples
//!
//! ```
//! use bv_energy::{EnergyModel, LlcEnergyClass};
//! use bv_sim::{LlcKind, SimConfig, System};
//! use bv_trace::synth::{KernelSpec, WorkloadSpec};
//! use bv_trace::{DataProfile, KernelKind};
//!
//! let workload = WorkloadSpec {
//!     kernels: vec![KernelSpec {
//!         kind: KernelKind::Loop,
//!         region_bytes: 512 << 10,
//!         weight: 1,
//!         store_fraction: 32,
//!         profile: DataProfile::SmallInt,
//!     }],
//!     mem_fraction: 85,
//!     ifetch_fraction: 8,
//!     code_bytes: 16 << 10,
//!     seed: 5,
//! };
//! let run = System::new(SimConfig::single_thread(LlcKind::BaseVictim))
//!     .run(&workload, 50_000);
//! let model = EnergyModel::paper_default();
//! let energy = model.evaluate(&run, LlcEnergyClass::BaseVictim { word_enables: true });
//! assert!(energy.total_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;

use bv_sim::RunResult;
use constants::EnergyConstants;

/// How the simulated LLC organization maps onto energy events.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LlcEnergyClass {
    /// Single-tag uncompressed cache.
    Uncompressed,
    /// Any doubled-tag compressed organization without Base-Victim
    /// migrations (the two-tag baselines).
    TwoTag {
        /// Whether the SRAM provides word enables (partial-line writes).
        word_enables: bool,
    },
    /// The Base-Victim organization (doubled tags + migrations).
    BaseVictim {
        /// Whether the SRAM provides word enables (partial-line writes).
        word_enables: bool,
    },
}

impl LlcEnergyClass {
    fn is_compressed(self) -> bool {
        !matches!(self, LlcEnergyClass::Uncompressed)
    }

    fn has_word_enables(self) -> bool {
        match self {
            LlcEnergyClass::Uncompressed => true,
            LlcEnergyClass::TwoTag { word_enables }
            | LlcEnergyClass::BaseVictim { word_enables } => word_enables,
        }
    }
}

/// Energy totals in nanojoules, by component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM dynamic energy (reads + writes).
    pub dram_dynamic_nj: f64,
    /// DRAM background energy over the run.
    pub dram_background_nj: f64,
    /// LLC dynamic energy (tag lookups, data reads/writes, migrations,
    /// read-modify-writes).
    pub llc_dynamic_nj: f64,
    /// LLC leakage over the run (scaled up by the compressed tag area).
    pub llc_leakage_nj: f64,
    /// Compression + decompression logic energy.
    pub codec_nj: f64,
}

impl EnergyBreakdown {
    /// Total subsystem energy.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.dram_dynamic_nj
            + self.dram_background_nj
            + self.llc_dynamic_nj
            + self.llc_leakage_nj
            + self.codec_nj
    }

    /// Energy ratio against a baseline breakdown (< 1.0 means savings).
    #[must_use]
    pub fn ratio(&self, baseline: &EnergyBreakdown) -> f64 {
        self.total_nj() / baseline.total_nj()
    }
}

/// The energy model: constants plus the event-mapping rules.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    constants: EnergyConstants,
}

impl EnergyModel {
    /// Model with the documented 22 nm / DDR3-1600 constants.
    #[must_use]
    pub fn paper_default() -> EnergyModel {
        EnergyModel {
            constants: EnergyConstants::paper_default(),
        }
    }

    /// Model with custom constants (for sensitivity studies).
    #[must_use]
    pub fn with_constants(constants: EnergyConstants) -> EnergyModel {
        EnergyModel { constants }
    }

    /// The constants in use.
    #[must_use]
    pub fn constants(&self) -> &EnergyConstants {
        &self.constants
    }

    /// Maps one run's event counts to subsystem energy.
    #[must_use]
    pub fn evaluate(&self, run: &RunResult, class: LlcEnergyClass) -> EnergyBreakdown {
        let c = &self.constants;
        let llc = &run.llc;
        let seconds = run.cycles as f64 / c.core_hz;

        // --- DRAM ---
        let dram_dynamic_nj =
            run.dram.reads as f64 * c.dram_read_nj + run.dram.writes as f64 * c.dram_write_nj;
        let dram_background_nj = c.dram_background_w * seconds * 1e9;

        // --- LLC dynamic ---
        let lookups = llc.reads()
            + llc.writeback_hits
            + llc.writeback_misses
            + llc.prefetch_hits
            + llc.prefetch_fills;
        let tag_scale = if class.is_compressed() {
            1.0 + c.extra_tag_energy_fraction
        } else {
            1.0
        };
        let tag_nj = lookups as f64 * c.llc_tag_nj * tag_scale;

        let hits = llc.base_hits + llc.victim_hits;
        let fills = llc.demand_fills + llc.prefetch_fills;
        let writes = fills + llc.writeback_hits;
        // Migrations move data between ways: one read plus one write each.
        let migrations = llc.migrations as f64;
        // Without word enables, every fill/writeback into a compressed
        // array must read-modify-write the physical line to preserve the
        // partner's bits.
        let rmw_reads = if class.is_compressed() && !class.has_word_enables() {
            writes as f64 + migrations
        } else {
            0.0
        };
        let data_nj = (hits as f64 + migrations + rmw_reads) * c.llc_data_read_nj
            + (writes as f64 + migrations) * c.llc_data_write_nj;
        let llc_dynamic_nj = tag_nj + data_nj;

        // --- LLC leakage ---
        let leak_scale = if class.is_compressed() {
            1.0 + c.compressed_area_overhead
        } else {
            1.0
        };
        let llc_leakage_nj = c.llc_leakage_w * leak_scale * seconds * 1e9;

        // --- Codec ---
        let codec_nj = if class.is_compressed() {
            // Compress on every fill and writeback; decompress on every
            // hit to a truly compressed line (zero and full lines are
            // detected from tag metadata and skip the codec).
            let compressed_fraction = compressed_line_fraction(run);
            writes as f64 * c.compress_nj + hits as f64 * compressed_fraction * c.decompress_nj
        } else {
            0.0
        };

        EnergyBreakdown {
            dram_dynamic_nj,
            dram_background_nj,
            llc_dynamic_nj,
            llc_leakage_nj,
            codec_nj,
        }
    }
}

/// Fraction of observed lines whose compressed size is strictly between
/// one segment (zero line) and a full line — the lines that actually pay
/// codec latency/energy.
fn compressed_line_fraction(run: &RunResult) -> f64 {
    let total = run.compression.lines();
    if total == 0 {
        return 0.0;
    }
    let mut middle = 0u64;
    for seg in 2..=15u8 {
        middle += run.compression.count(bv_compress::SegmentCount::new(seg));
    }
    middle as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_sim::{DramStats, LlcKind, SimConfig, System};
    use bv_trace::synth::{KernelSpec, WorkloadSpec};
    use bv_trace::{DataProfile, KernelKind};

    fn run(kind: LlcKind, profile: DataProfile) -> RunResult {
        let workload = WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 200,
                },
                region_bytes: 768 << 10,
                weight: 1,
                store_fraction: 48,
                profile,
            }],
            mem_fraction: 96,
            ifetch_fraction: 8,
            code_bytes: 16 << 10,
            seed: 31,
        };
        // A scaled-down LLC (512 KB) so the working set wraps it and the
        // run reaches steady state within a unit-test budget.
        let cfg = SimConfig::single_thread(kind).with_llc_size(512 * 1024, 16);
        System::new(cfg).run(&workload, 300_000)
    }

    #[test]
    fn compression_saves_energy_on_compressible_data() {
        let model = EnergyModel::paper_default();
        let base_run = run(LlcKind::Uncompressed, DataProfile::PointerLike);
        let bv_run = run(LlcKind::BaseVictim, DataProfile::PointerLike);
        let base = model.evaluate(&base_run, LlcEnergyClass::Uncompressed);
        let bv = model.evaluate(&bv_run, LlcEnergyClass::BaseVictim { word_enables: true });
        assert!(
            bv.ratio(&base) < 1.0,
            "expected savings, ratio {:.3}",
            bv.ratio(&base)
        );
    }

    #[test]
    fn missing_word_enables_cost_energy() {
        let model = EnergyModel::paper_default();
        let bv_run = run(LlcKind::BaseVictim, DataProfile::PointerLike);
        let with = model.evaluate(&bv_run, LlcEnergyClass::BaseVictim { word_enables: true });
        let without = model.evaluate(
            &bv_run,
            LlcEnergyClass::BaseVictim {
                word_enables: false,
            },
        );
        assert!(without.total_nj() > with.total_nj());
    }

    #[test]
    fn incompressible_data_can_cost_energy() {
        // With no DRAM savings, the extra tags/codec/leakage make the
        // compressed design strictly worse — the paper's negative
        // outliers (up to +2.3%).
        let model = EnergyModel::paper_default();
        let base_run = run(LlcKind::Uncompressed, DataProfile::Random);
        let bv_run = run(LlcKind::BaseVictim, DataProfile::Random);
        let base = model.evaluate(&base_run, LlcEnergyClass::Uncompressed);
        let bv = model.evaluate(&bv_run, LlcEnergyClass::BaseVictim { word_enables: true });
        assert!(
            bv.ratio(&base) > 0.99,
            "incompressible data should not save much, ratio {:.3}",
            bv.ratio(&base)
        );
    }

    #[test]
    fn breakdown_components_are_nonnegative_and_sum() {
        let model = EnergyModel::paper_default();
        let r = run(LlcKind::BaseVictim, DataProfile::SmallInt);
        let e = model.evaluate(&r, LlcEnergyClass::BaseVictim { word_enables: true });
        for part in [
            e.dram_dynamic_nj,
            e.dram_background_nj,
            e.llc_dynamic_nj,
            e.llc_leakage_nj,
            e.codec_nj,
        ] {
            assert!(part >= 0.0);
        }
        let sum = e.dram_dynamic_nj
            + e.dram_background_nj
            + e.llc_dynamic_nj
            + e.llc_leakage_nj
            + e.codec_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
    }

    #[test]
    fn uncompressed_class_has_no_codec_energy() {
        let model = EnergyModel::paper_default();
        let r = run(LlcKind::Uncompressed, DataProfile::SmallInt);
        let e = model.evaluate(&r, LlcEnergyClass::Uncompressed);
        assert_eq!(e.codec_nj, 0.0);
    }

    #[test]
    fn dram_read_reduction_drives_the_ratio() {
        // Synthetic check: halving DRAM reads with other counters fixed
        // must reduce total energy.
        let model = EnergyModel::paper_default();
        let mut r = run(LlcKind::Uncompressed, DataProfile::SmallInt);
        let full = model.evaluate(&r, LlcEnergyClass::Uncompressed);
        r.dram = DramStats {
            reads: r.dram.reads / 2,
            ..r.dram
        };
        let halved = model.evaluate(&r, LlcEnergyClass::Uncompressed);
        assert!(halved.total_nj() < full.total_nj());
    }
}
