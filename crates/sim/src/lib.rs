//! Trace-driven CPU + memory-hierarchy timing simulator.
//!
//! Reproduces the evaluation platform of Section V of the Base-Victim
//! paper: a 4 GHz, 4-wide out-of-order core with 32 KB L1I/L1D, a 256 KB
//! L2, an inclusive last-level cache (2 MB single-thread / 4 MB
//! multi-program by default), aggressive multi-stream prefetching, and two
//! channels of DDR3-1600 (15-15-15-34).
//!
//! The paper uses a cycle-accurate execution-driven x86 simulator; we
//! substitute a trace-driven *interval* timing model (documented in
//! DESIGN.md): compute work retires at the pipeline width, independent
//! long-latency misses overlap inside the reorder-buffer window, and
//! dependent (pointer-chase) misses serialize. Because every evaluated
//! organization shares the identical core, the IPC *ratios* the paper
//! reports depend on exactly the signals this model preserves — LLC
//! hit/miss streams, DRAM occupancy, and the compressed-cache latency
//! adders.
//!
//! # Examples
//!
//! ```no_run
//! use bv_sim::{LlcKind, SimConfig, System};
//! use bv_trace::TraceRegistry;
//!
//! let registry = TraceRegistry::paper_default();
//! let trace = registry.get("specint.mcf.07").unwrap();
//! let config = SimConfig::single_thread(LlcKind::BaseVictim);
//! let result = System::new(config).run(&trace.workload, 1_000_000);
//! println!("IPC = {:.3}", result.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod core_model;
mod dram;
mod hierarchy;
mod multicore;
mod prefetch;
pub mod report;
mod system;
mod telemetry;

pub use batch::{EventBatch, BATCH_EVENTS};
pub use config::{CompressorKind, CoreConfig, DramConfig, LlcKind, SimConfig};
pub use core_model::CoreModel;
pub use dram::{Dram, DramStats};
pub use hierarchy::{Hierarchy, LevelHit};
pub use multicore::{MulticoreResult, MulticoreSystem};
pub use prefetch::StreamPrefetcher;
pub use system::{RunResult, System};
pub use telemetry::{
    Instrument, MulticoreInstrument, MulticoreTelemetry, NoInstrument, SimTelemetry,
    DEFAULT_EPOCH_INSTS,
};
