//! Multi-program (shared-LLC) simulation driver (Section V / Figure 13).
//!
//! Four cores with private L1/L2 caches share one LLC and the DRAM
//! channels. Each thread executes a fixed instruction budget; threads that
//! finish early continue executing so LLC contention stays realistic (as
//! in the paper), and the run ends when every thread has finished its
//! measured phase.

use crate::config::SimConfig;
use crate::core_model::CoreModel;
use crate::dram::DramStats;
use crate::hierarchy::Hierarchy;
use crate::telemetry::{MulticoreInstrument, MulticoreTelemetry, NoInstrument};
use bv_core::LlcStats;
use bv_trace::synth::WorkloadSpec;
use bv_trace::TraceGenerator;

/// Per-thread address-space stride: 1 TB apart, far beyond any working
/// set.
const THREAD_OFFSET: u64 = 1 << 40;

/// Measurements of one multi-program run.
#[derive(Clone, Debug)]
pub struct MulticoreResult {
    /// Per-thread IPC over each thread's measured phase.
    pub thread_ipc: Vec<f64>,
    /// Shared-LLC statistics.
    pub llc: LlcStats,
    /// Shared-DRAM statistics.
    pub dram: DramStats,
}

impl MulticoreResult {
    /// The paper's metric: normalized weighted speedup,
    /// `(1/n) * sum(IPC_new_i / IPC_base_i)`, equal to 1.0 when nothing
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the two results have different thread counts.
    #[must_use]
    pub fn weighted_speedup(&self, baseline: &MulticoreResult) -> f64 {
        assert_eq!(self.thread_ipc.len(), baseline.thread_ipc.len());
        let n = self.thread_ipc.len() as f64;
        self.thread_ipc
            .iter()
            .zip(baseline.thread_ipc.iter())
            .map(|(new, base)| new / base)
            .sum::<f64>()
            / n
    }
}

/// The shared-LLC multi-program system.
///
/// # Examples
///
/// ```no_run
/// use bv_sim::{LlcKind, MulticoreSystem, SimConfig};
/// use bv_trace::{mix::paper_mixes, TraceRegistry};
///
/// let reg = TraceRegistry::paper_default();
/// let mixes = paper_mixes(&reg);
/// let members = mixes[0].resolve(&reg);
/// let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
/// let result = MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim))
///     .run(&workloads, 500_000);
/// assert_eq!(result.thread_ipc.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MulticoreSystem {
    cfg: SimConfig,
}

impl MulticoreSystem {
    /// Creates a multi-program system.
    #[must_use]
    pub fn new(cfg: SimConfig) -> MulticoreSystem {
        MulticoreSystem { cfg }
    }

    /// Runs the mix until every thread has retired `instructions_each`;
    /// early finishers keep executing to preserve contention.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    #[must_use]
    pub fn run(&self, workloads: &[WorkloadSpec], instructions_each: u64) -> MulticoreResult {
        self.run_instrumented(workloads, instructions_each, &mut NoInstrument)
    }

    /// Like [`run`](MulticoreSystem::run), but samples `telemetry` every
    /// epoch of *aggregate* committed instructions. The simulation is
    /// unperturbed: the result is identical to the unsampled run.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    #[must_use]
    pub fn run_sampled(
        &self,
        workloads: &[WorkloadSpec],
        instructions_each: u64,
        telemetry: &mut MulticoreTelemetry,
    ) -> MulticoreResult {
        self.run_instrumented(workloads, instructions_each, telemetry)
    }

    /// The generic driver under both entry points. With
    /// [`NoInstrument`] the observer bookkeeping monomorphizes away.
    #[must_use]
    pub fn run_instrumented<I: MulticoreInstrument>(
        &self,
        workloads: &[WorkloadSpec],
        instructions_each: u64,
        instr: &mut I,
    ) -> MulticoreResult {
        assert!(!workloads.is_empty(), "need at least one workload");
        let n = workloads.len();
        let mut hierarchy = Hierarchy::new(self.cfg, n);
        let mut cores: Vec<CoreModel> = (0..n).map(|_| CoreModel::new(self.cfg.core)).collect();
        let mut gens: Vec<TraceGenerator> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| w.generator_at(i as u64 * THREAD_OFFSET))
            .collect();
        let mut finished_cycles: Vec<Option<u64>> = vec![None; n];
        // Per-thread decode rings; see `EventBatch` for why decode-ahead
        // is bit-identical to per-iteration `next_event`.
        let mut batches: Vec<crate::batch::EventBatch> =
            (0..n).map(|_| crate::batch::EventBatch::new()).collect();
        instr.begin(&cores, &hierarchy);
        // Cached locally so the hot loop compares against a register
        // instead of re-reading the observer through `&mut` every event.
        let mut boundary = instr.next_boundary();

        // Cycle-ordered interleaving: always step the thread whose local
        // clock is furthest behind, so shared-resource contention is
        // approximately simultaneous.
        while finished_cycles.iter().any(Option::is_none) {
            let tid = (0..n)
                .min_by_key(|&i| cores[i].cycles())
                .expect("at least one core");
            let ev = batches[tid].next(&mut gens[tid]);
            cores[tid].work(ev.instructions());
            let now = cores[tid].cycles();
            let out = hierarchy.access_on(tid, &ev, now, &gens[tid]);
            cores[tid].account(&ev, &out);
            if finished_cycles[tid].is_none() && cores[tid].instructions() >= instructions_each {
                finished_cycles[tid] = Some(cores[tid].cycles());
            }
            if I::ENABLED {
                let retired: u64 = cores.iter().map(CoreModel::instructions).sum();
                if retired >= boundary {
                    instr.sample(&cores, &hierarchy);
                    boundary = instr.next_boundary();
                }
            }
        }
        instr.finish(&cores, &hierarchy);

        let thread_ipc = finished_cycles
            .iter()
            .map(|c| instructions_each as f64 / c.expect("all finished") as f64)
            .collect();
        MulticoreResult {
            thread_ipc,
            llc: *hierarchy.uncore().llc().stats(),
            dram: *hierarchy.uncore().dram().stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LlcKind;
    use bv_trace::synth::KernelSpec;
    use bv_trace::{DataProfile, KernelKind};

    fn workload(seed: u64, profile: DataProfile) -> WorkloadSpec {
        WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 210,
                },
                region_bytes: 2 << 20,
                weight: 1,
                store_fraction: 40,
                profile,
            }],
            mem_fraction: 96,
            ifetch_fraction: 8,
            code_bytes: 16 << 10,
            seed,
        }
    }

    #[test]
    fn four_threads_all_finish() {
        let ws: Vec<WorkloadSpec> = (0..4).map(|i| workload(i, DataProfile::SmallInt)).collect();
        let r =
            MulticoreSystem::new(SimConfig::multi_program(LlcKind::Uncompressed)).run(&ws, 50_000);
        assert_eq!(r.thread_ipc.len(), 4);
        assert!(r.thread_ipc.iter().all(|&ipc| ipc > 0.0));
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let ws: Vec<WorkloadSpec> = (0..2).map(|i| workload(i, DataProfile::SmallInt)).collect();
        let sys = MulticoreSystem::new(SimConfig::multi_program(LlcKind::Uncompressed));
        let a = sys.run(&ws, 40_000);
        let b = sys.run(&ws, 40_000);
        assert!((a.weighted_speedup(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compression_helps_contended_mixes() {
        let ws: Vec<WorkloadSpec> = (0..4)
            .map(|i| workload(i, DataProfile::PointerLike))
            .collect();
        let base =
            MulticoreSystem::new(SimConfig::multi_program(LlcKind::Uncompressed)).run(&ws, 150_000);
        let bv =
            MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim)).run(&ws, 150_000);
        // The architectural guarantee is on hit rate; IPC additionally
        // pays the tag/decompression latency, so allow a sliver of noise
        // at this tiny instruction budget.
        assert!(
            bv.weighted_speedup(&base) >= 0.98,
            "weighted speedup {:.3} unexpectedly low",
            bv.weighted_speedup(&base)
        );
        assert!(
            bv.llc.hit_rate() >= base.llc.hit_rate() - 1e-12,
            "hit-rate guarantee violated in the mix"
        );
        assert!(bv.llc.victim_hits > 0, "victim cache unused in the mix");
    }

    #[test]
    fn sampled_run_matches_unsampled_run_exactly() {
        let ws: Vec<WorkloadSpec> = (0..2)
            .map(|i| workload(i, DataProfile::PointerLike))
            .collect();
        let sys = MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim));
        let plain = sys.run(&ws, 40_000);
        let mut tel = MulticoreTelemetry::new(20_000);
        let sampled = sys.run_sampled(&ws, 40_000, &mut tel);
        assert_eq!(plain.thread_ipc, sampled.thread_ipc);
        assert_eq!(plain.llc, sampled.llc);
        assert_eq!(plain.dram, sampled.dram);
        let report = tel.into_report();
        // Aggregate budget is >= 80k: at least three 20k epochs, with
        // one per-thread IPC column each.
        assert!(report.series.rows() >= 3, "{} rows", report.series.rows());
        for t in 0..2 {
            let ipc = report.series.f64s(&format!("ipc.t{t}")).expect("column");
            assert!(ipc.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn threads_use_disjoint_address_spaces() {
        // Two copies of the same workload (same seed).
        let w = workload(7, DataProfile::SmallInt);
        let mut g0 = w.generator_at(0);
        let mut g1 = w.generator_at(THREAD_OFFSET);
        for _ in 0..100 {
            let a = g0.next_event().addr;
            let b = g1.next_event().addr;
            assert!(b >= THREAD_OFFSET && a < THREAD_OFFSET);
        }
    }
}
