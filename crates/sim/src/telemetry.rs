//! Epoch-sampled instrumentation of the run loops.
//!
//! The drivers in [`system`](crate::system) and
//! [`multicore`](crate::multicore) are generic over an observer —
//! [`Instrument`] for the single-core loop, [`MulticoreInstrument`] for
//! the shared-LLC loop. The default observer, [`NoInstrument`], compiles
//! to nothing: `next_boundary` is `u64::MAX` (one dead compare per
//! event) and [`Instrument::ENABLED`] is `false`, so monomorphization
//! removes even the boundary bookkeeping from the uninstrumented path.
//! Goldens and benchmarks therefore stay bit-identical with telemetry
//! off.
//!
//! [`SimTelemetry`] and [`MulticoreTelemetry`] are the real observers:
//! every `epoch_insts` committed instructions they snapshot the uncore
//! counters, push one row of per-epoch deltas into a
//! [`TimeSeries`], and on `finish` harvest whole-run counters
//! (LLC events, DRAM traffic, compressed-size distribution, per-encoder
//! selection counts). The result is a [`TelemetryReport`] ready for the
//! `bvsim-telemetry-v1` JSONL sink.
//!
//! Sampling is driven by the deterministic committed-instruction clock,
//! never wall time, so instrumented runs remain reproducible and the
//! simulated machine is unperturbed.

use std::collections::BTreeMap;

use bv_compress::{CompressionStats, SEGMENTS_PER_LINE};
use bv_core::LlcStats;
use bv_telemetry::{ColumnId, Log2Histogram, TelemetryReport, TimeSeries};

use crate::core_model::CoreModel;
use crate::dram::DramStats;
use crate::hierarchy::Hierarchy;

pub use bv_telemetry::DEFAULT_EPOCH_INSTS;

/// Observer hooks for the single-core run loop.
///
/// `begin` fires once when the measured phase starts, `sample` whenever
/// the committed-instruction count crosses
/// [`next_boundary`](Instrument::next_boundary), and `finish` once when
/// the measured phase ends. All defaults are no-ops so that a disabled
/// observer costs exactly one `u64` compare per trace event.
pub trait Instrument {
    /// `false` only for [`NoInstrument`]; lets the drivers drop sampling
    /// bookkeeping from the monomorphized uninstrumented loop entirely.
    const ENABLED: bool = true;

    /// The measured phase is starting at `insts` committed instructions
    /// and `cycles` elapsed core cycles (warmup included in both).
    fn begin(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        let _ = (insts, cycles, hierarchy);
    }

    /// The committed-instruction count at which the driver should call
    /// [`sample`](Instrument::sample) next. `u64::MAX` never fires.
    fn next_boundary(&self) -> u64 {
        u64::MAX
    }

    /// An epoch boundary was crossed.
    fn sample(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        let _ = (insts, cycles, hierarchy);
    }

    /// The measured phase ended.
    fn finish(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        let _ = (insts, cycles, hierarchy);
    }
}

/// Observer hooks for the multi-program run loop.
///
/// The shared-LLC driver has no single clock, so the hooks see the
/// per-thread [`CoreModel`]s and sampling is keyed on the *aggregate*
/// committed-instruction count across threads.
pub trait MulticoreInstrument {
    /// `false` only for [`NoInstrument`]; drops the aggregate-retired
    /// bookkeeping from the monomorphized uninstrumented loop.
    const ENABLED: bool = true;

    /// The run is starting.
    fn begin(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        let _ = (cores, hierarchy);
    }

    /// The aggregate committed-instruction count at which the driver
    /// should call [`sample`](MulticoreInstrument::sample) next.
    fn next_boundary(&self) -> u64 {
        u64::MAX
    }

    /// An epoch boundary was crossed.
    fn sample(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        let _ = (cores, hierarchy);
    }

    /// The run ended.
    fn finish(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        let _ = (cores, hierarchy);
    }
}

/// The do-nothing observer the plain `run` entry points use.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInstrument;

impl Instrument for NoInstrument {
    const ENABLED: bool = false;
}

impl MulticoreInstrument for NoInstrument {
    const ENABLED: bool = false;
}

/// Uncore counter snapshot used for epoch deltas and whole-run totals.
#[derive(Clone, Debug)]
struct UncoreSnapshot {
    llc: LlcStats,
    comp: CompressionStats,
    dram: DramStats,
    encoders: Vec<(&'static str, u64)>,
}

impl UncoreSnapshot {
    fn capture(hierarchy: &Hierarchy) -> UncoreSnapshot {
        let llc = hierarchy.uncore().llc();
        UncoreSnapshot {
            llc: *llc.stats(),
            comp: llc.compression_stats().clone(),
            dram: *hierarchy.uncore().dram().stats(),
            encoders: llc.encoder_counts(),
        }
    }
}

/// Resident logical lines expressed as kibibytes of uncompressed data —
/// the paper's "effective capacity" (compressed organizations exceed
/// their physical size when lines share ways).
fn effective_kib(hierarchy: &Hierarchy) -> f64 {
    let llc = hierarchy.uncore().llc();
    let lines = llc.resident_lines().len();
    (lines * llc.geometry().line_bytes()) as f64 / 1024.0
}

/// The per-epoch columns shared by the single-core and multicore
/// samplers, plus the two epoch histograms.
#[derive(Clone, Debug)]
struct EpochSeries {
    series: TimeSeries,
    insts: ColumnId,
    ipc: ColumnId,
    llc_mpki: ColumnId,
    victim_hit_rate: ColumnId,
    victim_drops: ColumnId,
    comp_ratio: ColumnId,
    effective_kib: ColumnId,
    dram_reads: ColumnId,
    dram_writes: ColumnId,
    epoch_dram_reads: Log2Histogram,
    epoch_victim_drops: Log2Histogram,
}

impl EpochSeries {
    fn new() -> EpochSeries {
        let mut series = TimeSeries::new();
        EpochSeries {
            insts: series.u64_column("insts"),
            ipc: series.f64_column("ipc"),
            llc_mpki: series.f64_column("llc_mpki"),
            victim_hit_rate: series.f64_column("victim_hit_rate"),
            victim_drops: series.u64_column("victim_drops"),
            comp_ratio: series.f64_column("comp_ratio"),
            effective_kib: series.f64_column("effective_kib"),
            dram_reads: series.u64_column("dram_reads"),
            dram_writes: series.u64_column("dram_writes"),
            epoch_dram_reads: Log2Histogram::new(),
            epoch_victim_drops: Log2Histogram::new(),
            series,
        }
    }

    /// Pushes the shared columns of one epoch row from measured deltas.
    /// The caller appends any extra columns and seals the row.
    fn push_shared(
        &mut self,
        measured_insts: u64,
        d_insts: u64,
        d_cycles: u64,
        prev: &UncoreSnapshot,
        cur: &UncoreSnapshot,
        hierarchy: &Hierarchy,
    ) {
        let llc = cur.llc.since(&prev.llc);
        let comp = cur.comp.since(&prev.comp);
        let dram = cur.dram.since(&prev.dram);

        self.series.push_u64(self.insts, measured_insts);
        self.series.push_f64(
            self.ipc,
            if d_cycles == 0 {
                0.0
            } else {
                d_insts as f64 / d_cycles as f64
            },
        );
        self.series.push_f64(
            self.llc_mpki,
            if d_insts == 0 {
                0.0
            } else {
                llc.read_misses as f64 * 1000.0 / d_insts as f64
            },
        );
        self.series
            .push_f64(self.victim_hit_rate, llc.victim_hit_rate());
        self.series.push_u64(self.victim_drops, llc.victim_drops());
        self.series.push_f64(self.comp_ratio, comp.mean_ratio());
        self.series
            .push_f64(self.effective_kib, effective_kib(hierarchy));
        self.series.push_u64(self.dram_reads, dram.reads);
        self.series.push_u64(self.dram_writes, dram.writes);

        self.epoch_dram_reads.record(dram.reads);
        self.epoch_victim_drops.record(llc.victim_drops());
    }

    /// Whole-run counters from the measured-phase deltas, in a fixed
    /// registration order.
    fn harvest_counters(begin: &UncoreSnapshot, end: &UncoreSnapshot) -> Vec<(String, u64)> {
        let llc = end.llc.since(&begin.llc);
        let comp = end.comp.since(&begin.comp);
        let dram = end.dram.since(&begin.dram);

        let mut counters = vec![
            ("llc.base_hits".to_string(), llc.base_hits),
            ("llc.victim_hits".to_string(), llc.victim_hits),
            ("llc.read_misses".to_string(), llc.read_misses),
            ("llc.demand_fills".to_string(), llc.demand_fills),
            ("llc.prefetch_fills".to_string(), llc.prefetch_fills),
            ("llc.prefetch_hits".to_string(), llc.prefetch_hits),
            ("llc.writeback_hits".to_string(), llc.writeback_hits),
            ("llc.memory_writes".to_string(), llc.memory_writes),
            ("llc.back_invalidations".to_string(), llc.back_invalidations),
            ("llc.migrations".to_string(), llc.migrations),
            ("llc.victim_inserts".to_string(), llc.victim_inserts),
            (
                "llc.victim_insert_failures".to_string(),
                llc.victim_insert_failures,
            ),
            ("llc.partner_evictions".to_string(), llc.partner_evictions),
            ("dram.reads".to_string(), dram.reads),
            ("dram.writes".to_string(), dram.writes),
            ("dram.row_hits".to_string(), dram.row_hits),
            ("dram.row_misses".to_string(), dram.row_misses),
        ];
        let histogram = comp.histogram();
        for segments in 1..=SEGMENTS_PER_LINE {
            counters.push((format!("size.{segments:02}seg"), histogram[segments - 1]));
        }
        // Encoder tallies are cumulative in the organization; subtract
        // the begin snapshot so counters cover the measured phase only.
        for (i, (name, total)) in end.encoders.iter().enumerate() {
            let warm = begin.encoders.get(i).map_or(0, |(_, n)| *n);
            counters.push((format!("encoder.{name}"), total - warm));
        }
        counters
    }
}

/// The epoch sampler for single-core runs
/// (`bvsim run --telemetry <file>`).
///
/// Drive it through [`System::run_sampled`](crate::System::run_sampled),
/// then convert with [`SimTelemetry::into_report`].
///
/// Epoch rows carry per-epoch deltas: IPC, LLC misses per
/// kilo-instruction, victim-cache hit rate, victim drops (failed
/// parkings plus partner evictions), mean compression ratio, effective
/// capacity in KiB, and DRAM read/write transfers. The final epoch may
/// be shorter than `epoch_insts` (the run's tail).
///
/// # Examples
///
/// ```
/// use bv_sim::{LlcKind, SimConfig, SimTelemetry, System};
/// use bv_trace::TraceRegistry;
///
/// let registry = TraceRegistry::paper_default();
/// let workload = &registry.get("specint.mcf.07").unwrap().workload;
/// let mut telemetry = SimTelemetry::new(20_000);
/// let sys = System::new(SimConfig::single_thread(LlcKind::BaseVictim));
/// let result = sys.run_sampled(workload, 10_000, 60_000, &mut telemetry);
/// let report = telemetry.into_report();
/// assert_eq!(report.series.rows(), 3);
/// assert!(result.ipc() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct SimTelemetry {
    epoch_insts: u64,
    meta: BTreeMap<String, String>,
    epochs: EpochSeries,
    next: u64,
    begin: Option<(u64, u64, UncoreSnapshot)>,
    prev: Option<(u64, u64, UncoreSnapshot)>,
    counters: Vec<(String, u64)>,
}

impl SimTelemetry {
    /// Creates a sampler that fires every `epoch_insts` committed
    /// instructions ([`DEFAULT_EPOCH_INSTS`] is the CLI default).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_insts` is zero.
    #[must_use]
    pub fn new(epoch_insts: u64) -> SimTelemetry {
        assert!(epoch_insts > 0, "epoch must be at least one instruction");
        SimTelemetry {
            epoch_insts,
            meta: BTreeMap::new(),
            epochs: EpochSeries::new(),
            next: u64::MAX,
            begin: None,
            prev: None,
            counters: Vec::new(),
        }
    }

    /// Attaches a run-identity key (trace name, LLC kind, ...) to the
    /// report header.
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: &str) -> SimTelemetry {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    fn push_row(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        let cur = UncoreSnapshot::capture(hierarchy);
        let (begin_insts, _, _) = self.begin.as_ref().expect("begin() not called");
        let measured = insts - begin_insts;
        let (prev_insts, prev_cycles, prev) = self.prev.as_ref().expect("begin() not called");
        self.epochs.push_shared(
            measured,
            insts - prev_insts,
            cycles - prev_cycles,
            prev,
            &cur,
            hierarchy,
        );
        self.epochs.series.end_row();
        self.prev = Some((insts, cycles, cur));
    }

    /// Consumes the sampler into the serializable report. Call after the
    /// run completes.
    #[must_use]
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            epoch_insts: self.epoch_insts,
            meta: self.meta,
            series: self.epochs.series,
            histograms: vec![
                ("epoch_dram_reads".to_string(), self.epochs.epoch_dram_reads),
                (
                    "epoch_victim_drops".to_string(),
                    self.epochs.epoch_victim_drops,
                ),
            ],
            counters: self.counters,
        }
    }
}

impl Instrument for SimTelemetry {
    fn begin(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        let snap = UncoreSnapshot::capture(hierarchy);
        self.begin = Some((insts, cycles, snap.clone()));
        self.prev = Some((insts, cycles, snap));
        self.next = insts + self.epoch_insts;
    }

    fn next_boundary(&self) -> u64 {
        self.next
    }

    fn sample(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        self.push_row(insts, cycles, hierarchy);
        // Events commit several instructions at once, so a boundary can
        // be overshot; advance past the current count, not by one step.
        while self.next <= insts {
            self.next += self.epoch_insts;
        }
    }

    fn finish(&mut self, insts: u64, cycles: u64, hierarchy: &Hierarchy) {
        if self
            .prev
            .as_ref()
            .is_some_and(|(prev_insts, _, _)| insts > *prev_insts)
        {
            // Tail shorter than one epoch.
            self.push_row(insts, cycles, hierarchy);
        }
        let (_, _, begin) = self.begin.as_ref().expect("begin() not called");
        let end = UncoreSnapshot::capture(hierarchy);
        self.counters = EpochSeries::harvest_counters(begin, &end);
        self.next = u64::MAX;
    }
}

/// The epoch sampler for shared-LLC multi-program runs.
///
/// Like [`SimTelemetry`], plus one `ipc.t<i>` column per thread; the
/// `insts` column and the epoch clock are the *aggregate* committed
/// instructions across threads, and `ipc` is the aggregate count over
/// the furthest-ahead core clock. Columns are created when the run
/// starts (thread count known), so one sampler serves one run.
///
/// # Examples
///
/// ```no_run
/// use bv_sim::{LlcKind, MulticoreSystem, MulticoreTelemetry, SimConfig};
/// use bv_trace::{mix::paper_mixes, TraceRegistry};
///
/// let reg = TraceRegistry::paper_default();
/// let members = paper_mixes(&reg)[0].resolve(&reg);
/// let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
/// let mut telemetry = MulticoreTelemetry::new(100_000);
/// MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim))
///     .run_sampled(&workloads, 500_000, &mut telemetry);
/// let report = telemetry.into_report();
/// assert!(report.series.column("ipc.t0").is_some());
/// ```
#[derive(Clone, Debug)]
pub struct MulticoreTelemetry {
    epoch_insts: u64,
    meta: BTreeMap<String, String>,
    epochs: EpochSeries,
    thread_ipc: Vec<ColumnId>,
    next: u64,
    begin: Option<UncoreSnapshot>,
    prev: Option<(Vec<(u64, u64)>, UncoreSnapshot)>,
    counters: Vec<(String, u64)>,
}

impl MulticoreTelemetry {
    /// Creates a sampler that fires every `epoch_insts` aggregate
    /// committed instructions.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_insts` is zero.
    #[must_use]
    pub fn new(epoch_insts: u64) -> MulticoreTelemetry {
        assert!(epoch_insts > 0, "epoch must be at least one instruction");
        MulticoreTelemetry {
            epoch_insts,
            meta: BTreeMap::new(),
            epochs: EpochSeries::new(),
            thread_ipc: Vec::new(),
            next: u64::MAX,
            begin: None,
            prev: None,
            counters: Vec::new(),
        }
    }

    /// Attaches a run-identity key to the report header.
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: &str) -> MulticoreTelemetry {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    fn push_row(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        let cur = UncoreSnapshot::capture(hierarchy);
        let clocks: Vec<(u64, u64)> = cores
            .iter()
            .map(|c| (c.instructions(), c.cycles()))
            .collect();
        let (prev_clocks, prev) = self.prev.as_ref().expect("begin() not called");

        let retired: u64 = clocks.iter().map(|(i, _)| i).sum();
        let d_insts = retired - prev_clocks.iter().map(|(i, _)| i).sum::<u64>();
        let lead = clocks.iter().map(|(_, c)| *c).max().unwrap_or(0);
        let d_cycles = lead - prev_clocks.iter().map(|(_, c)| *c).max().unwrap_or(0);
        self.epochs
            .push_shared(retired, d_insts, d_cycles, prev, &cur, hierarchy);
        for (t, &col) in self.thread_ipc.iter().enumerate() {
            let di = clocks[t].0 - prev_clocks[t].0;
            let dc = clocks[t].1 - prev_clocks[t].1;
            self.epochs
                .series
                .push_f64(col, if dc == 0 { 0.0 } else { di as f64 / dc as f64 });
        }
        self.epochs.series.end_row();
        self.prev = Some((clocks, cur));
    }

    /// Consumes the sampler into the serializable report.
    #[must_use]
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            epoch_insts: self.epoch_insts,
            meta: self.meta,
            series: self.epochs.series,
            histograms: vec![
                ("epoch_dram_reads".to_string(), self.epochs.epoch_dram_reads),
                (
                    "epoch_victim_drops".to_string(),
                    self.epochs.epoch_victim_drops,
                ),
            ],
            counters: self.counters,
        }
    }
}

impl MulticoreInstrument for MulticoreTelemetry {
    fn begin(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        assert!(
            self.thread_ipc.is_empty(),
            "a MulticoreTelemetry samples one run"
        );
        for t in 0..cores.len() {
            let col = self.epochs.series.f64_column(&format!("ipc.t{t}"));
            self.thread_ipc.push(col);
        }
        let snap = UncoreSnapshot::capture(hierarchy);
        self.begin = Some(snap.clone());
        let clocks = cores
            .iter()
            .map(|c| (c.instructions(), c.cycles()))
            .collect();
        self.prev = Some((clocks, snap));
        self.next = self.epoch_insts;
    }

    fn next_boundary(&self) -> u64 {
        self.next
    }

    fn sample(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        self.push_row(cores, hierarchy);
        let retired: u64 = cores.iter().map(CoreModel::instructions).sum();
        while self.next <= retired {
            self.next += self.epoch_insts;
        }
    }

    fn finish(&mut self, cores: &[CoreModel], hierarchy: &Hierarchy) {
        let retired: u64 = cores.iter().map(CoreModel::instructions).sum();
        let sampled = self
            .prev
            .as_ref()
            .map_or(0, |(clocks, _)| clocks.iter().map(|(i, _)| i).sum());
        if retired > sampled {
            self.push_row(cores, hierarchy);
        }
        let begin = self.begin.as_ref().expect("begin() not called");
        let end = UncoreSnapshot::capture(hierarchy);
        self.counters = EpochSeries::harvest_counters(begin, &end);
        self.next = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LlcKind, SimConfig};
    use crate::system::System;
    use bv_trace::synth::{KernelSpec, WorkloadSpec};
    use bv_trace::{DataProfile, KernelKind};

    fn workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 200,
                },
                region_bytes: 2 << 20,
                weight: 1,
                store_fraction: 48,
                profile: DataProfile::PointerLike,
            }],
            mem_fraction: 96,
            ifetch_fraction: 8,
            code_bytes: 16 << 10,
            seed,
        }
    }

    #[test]
    fn sampled_run_matches_unsampled_run_exactly() {
        let w = workload(11);
        let sys = System::new(SimConfig::single_thread(LlcKind::BaseVictim));
        let plain = sys.run_with_warmup(&w, 30_000, 120_000);
        let mut tel = SimTelemetry::new(10_000);
        let sampled = sys.run_sampled(&w, 30_000, 120_000, &mut tel);
        assert_eq!(plain, sampled, "observer perturbed the simulation");
    }

    #[test]
    fn epoch_rows_cover_the_measured_phase() {
        let w = workload(12);
        let sys = System::new(SimConfig::single_thread(LlcKind::BaseVictim));
        let mut tel = SimTelemetry::new(10_000);
        let result = sys.run_sampled(&w, 20_000, 95_000, &mut tel);
        let report = tel.into_report();
        // ~9 full epochs plus the tail; event granularity blurs the
        // exact count but the last row must land on the phase end.
        let insts = report.series.u64s("insts").expect("insts column");
        assert!(insts.len() >= 9, "{} rows", insts.len());
        assert_eq!(*insts.last().unwrap(), result.instructions);
        assert!(insts.windows(2).all(|w| w[0] < w[1]), "not monotonic");
        // Epoch DRAM reads sum to the run total, which also appears in
        // the harvested counters.
        let dram: u64 = report.series.u64s("dram_reads").unwrap().iter().sum();
        assert_eq!(dram, result.dram.reads);
        let counter = report
            .counters
            .iter()
            .find(|(n, _)| n == "dram.reads")
            .expect("dram.reads counter");
        assert_eq!(counter.1, result.dram.reads);
    }

    #[test]
    fn encoder_counters_cover_measured_fills_only() {
        let w = workload(13);
        let sys = System::new(SimConfig::single_thread(LlcKind::BaseVictim));
        let encoder_total = |report: &TelemetryReport| -> u64 {
            report
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("encoder."))
                .map(|(_, v)| v)
                .sum()
        };

        let mut tel = SimTelemetry::new(50_000);
        let result = sys.run_sampled(&w, 50_000, 100_000, &mut tel);
        let measured = encoder_total(&tel.into_report());
        // Every encoder invocation records into the compression
        // histogram, but not vice versa (write hits with unchanged data
        // reuse the stored size), so the tally is a nonzero lower bound.
        assert!(measured > 0);
        assert!(measured <= result.compression.lines());

        // The same phase without warmup exclusion tallies strictly more:
        // warmup fills were subtracted from the measured counters.
        let mut full = SimTelemetry::new(50_000);
        let _ = sys.run_sampled(&w, 0, 150_000, &mut full);
        assert!(encoder_total(&full.into_report()) > measured);
    }

    #[test]
    fn meta_and_histograms_reach_the_report() {
        let w = workload(14);
        let sys = System::new(SimConfig::single_thread(LlcKind::Uncompressed));
        let mut tel = SimTelemetry::new(10_000)
            .with_meta("trace", "unit")
            .with_meta("llc", "uncompressed");
        let _ = sys.run_sampled(&w, 0, 40_000, &mut tel);
        let report = tel.into_report();
        assert_eq!(report.meta.get("trace").map(String::as_str), Some("unit"));
        assert_eq!(report.histograms.len(), 2);
        let (name, hist) = &report.histograms[0];
        assert_eq!(name, "epoch_dram_reads");
        assert_eq!(hist.count(), report.series.rows() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_epoch_is_rejected() {
        let _ = SimTelemetry::new(0);
    }
}
