//! Simulation configuration (Section V parameters).

use bv_cache::{CacheGeometry, PolicyKind};
use bv_compress::{Bdi, CPack, Compressor, Fpc, ZeroOnly};
use bv_core::{
    BaseVictimLlc, DccLlc, InclusionMode, LlcOrganization, TwoTagEcmLlc, TwoTagLlc,
    UncompressedLlc, VictimPolicyKind, VscLlc,
};
use bv_events::RingSink;

/// Selects the LLC compression algorithm for ablation studies (the paper
/// uses BDI throughout; Section VII.A notes the architecture is
/// algorithm-agnostic).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CompressorKind {
    /// Base-Delta-Immediate (the paper's choice).
    Bdi,
    /// Frequent Pattern Compression.
    Fpc,
    /// C-Pack.
    CPack,
    /// Zero-detection only (a Zero-Content-Cache-style control).
    ZeroOnly,
}

impl CompressorKind {
    /// All algorithms, for sweeps.
    pub const ALL: [CompressorKind; 4] = [
        CompressorKind::Bdi,
        CompressorKind::Fpc,
        CompressorKind::CPack,
        CompressorKind::ZeroOnly,
    ];

    /// Short stable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CompressorKind::Bdi => "bdi",
            CompressorKind::Fpc => "fpc",
            CompressorKind::CPack => "cpack",
            CompressorKind::ZeroOnly => "zero-only",
        }
    }

    /// Instantiates the algorithm.
    #[must_use]
    pub fn build(self) -> Box<dyn Compressor> {
        match self {
            CompressorKind::Bdi => Box::new(Bdi::new()),
            CompressorKind::Fpc => Box::new(Fpc::new()),
            CompressorKind::CPack => Box::new(CPack::new()),
            CompressorKind::ZeroOnly => Box::new(ZeroOnly::new()),
        }
    }
}

/// Core pipeline parameters (a state-of-the-art 4 GHz Intel Core-like
/// machine, per Section V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Issue/retire width (instructions per cycle).
    pub width: u32,
    /// Reorder-buffer capacity, bounding miss overlap.
    pub rob_size: u32,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: u32,
    /// L2 load-to-use latency in cycles.
    pub l2_latency: u32,
    /// LLC load-to-use latency in cycles.
    pub llc_latency: u32,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            width: 4,
            rob_size: 224,
            l1_latency: 3,
            l2_latency: 10,
            llc_latency: 24,
        }
    }
}

/// DDR3-1600 timing (Section V: two channels, 15-15-15-34).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// CAS latency in memory cycles.
    pub t_cl: u32,
    /// RAS-to-CAS delay in memory cycles.
    pub t_rcd: u32,
    /// Row precharge in memory cycles.
    pub t_rp: u32,
    /// Row active time in memory cycles.
    pub t_ras: u32,
    /// Data-burst occupancy per 64 B transfer, in memory cycles (BL8 on a
    /// 64-bit DDR bus = 4 bus cycles).
    pub t_burst: u32,
    /// Core cycles per memory cycle (4 GHz core / 800 MHz DDR3-1600 bus).
    pub core_cycles_per_mem_cycle: u32,
    /// Maximum queueing backlog a request can observe, in core cycles —
    /// the finite controller queue. Beyond this window, pending (prefetch)
    /// work is shed rather than accumulated.
    pub queue_window: u32,
    /// Maximum backlog a *demand* read can observe, in core cycles: the
    /// controller schedules demands ahead of queued prefetch/write work,
    /// so a demand waits for at most a few in-flight bursts.
    pub demand_window: u32,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
            t_cl: 15,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 34,
            t_burst: 4,
            core_cycles_per_mem_cycle: 5,
            queue_window: 2000,
            demand_window: 400,
        }
    }
}

/// Which LLC organization to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LlcKind {
    /// The uncompressed baseline.
    Uncompressed,
    /// Naive two-tag with partner victimization (Figure 6).
    TwoTag,
    /// Modified two-tag with ECM-style victim search (Figure 7).
    TwoTagEcm,
    /// Base-Victim opportunistic compression with the paper's default
    /// ECM-inspired victim-cache policy (Figures 8-13).
    BaseVictim,
    /// Base-Victim with an explicit victim-cache policy (Section VI.B.4).
    BaseVictimWith(VictimPolicyKind),
    /// The non-inclusive Base-Victim variant of Section IV.B.3 (victim
    /// lines may be dirty; saves writeback traffic).
    BaseVictimNonInclusive,
    /// Base-Victim with an explicit compression algorithm (ablation).
    BaseVictimCompressor(CompressorKind),
    /// Functional VSC-2X (capacity comparison only).
    Vsc,
    /// Functional DCC with super-block tags (capacity comparison only).
    Dcc,
}

impl LlcKind {
    /// The names [`LlcKind::from_name`] accepts, for error messages.
    pub const NAMES: &'static str = "uncompressed, two-tag, two-tag-ecm, base-victim, \
     base-victim-ni, base-victim-random-fit, vsc, dcc";

    /// Parses a CLI/protocol organization name — the inverse of
    /// [`LlcKind::name`] for the sweepable organizations (parameterized
    /// variants like explicit compressors are not nameable here). Accepts
    /// both the CLI spelling (`vsc`) and the report spelling (`vsc-2x`).
    #[must_use]
    pub fn from_name(s: &str) -> Option<LlcKind> {
        Some(match s {
            "uncompressed" => LlcKind::Uncompressed,
            "two-tag" => LlcKind::TwoTag,
            "two-tag-ecm" => LlcKind::TwoTagEcm,
            "base-victim" => LlcKind::BaseVictim,
            "base-victim-ni" => LlcKind::BaseVictimNonInclusive,
            "base-victim-random-fit" => LlcKind::BaseVictimWith(VictimPolicyKind::RandomFit),
            "vsc" | "vsc-2x" => LlcKind::Vsc,
            "dcc" => LlcKind::Dcc,
            _ => return None,
        })
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LlcKind::Uncompressed => "uncompressed",
            LlcKind::TwoTag => "two-tag",
            LlcKind::TwoTagEcm => "two-tag-ecm",
            LlcKind::BaseVictim => "base-victim",
            LlcKind::BaseVictimWith(_) => "base-victim-variant",
            LlcKind::BaseVictimNonInclusive => "base-victim-ni",
            LlcKind::BaseVictimCompressor(_) => "base-victim-compressor",
            LlcKind::Vsc => "vsc-2x",
            LlcKind::Dcc => "dcc",
        }
    }

    /// Instantiates the organization.
    #[must_use]
    pub fn build(self, geom: CacheGeometry, policy: PolicyKind) -> Box<dyn LlcOrganization> {
        match self {
            LlcKind::Uncompressed => Box::new(UncompressedLlc::new(geom, policy)),
            LlcKind::TwoTag => Box::new(TwoTagLlc::new(geom, policy)),
            LlcKind::TwoTagEcm => Box::new(TwoTagEcmLlc::new(geom, policy)),
            LlcKind::BaseVictim => Box::new(BaseVictimLlc::new(
                geom,
                policy,
                VictimPolicyKind::EcmLargestBase,
            )),
            LlcKind::BaseVictimWith(vp) => Box::new(BaseVictimLlc::new(geom, policy, vp)),
            LlcKind::BaseVictimNonInclusive => Box::new(BaseVictimLlc::new_non_inclusive(
                geom,
                policy,
                VictimPolicyKind::EcmLargestBase,
            )),
            LlcKind::BaseVictimCompressor(ck) => Box::new(BaseVictimLlc::with_compressor(
                geom,
                policy,
                VictimPolicyKind::EcmLargestBase,
                InclusionMode::Inclusive,
                ck.build(),
            )),
            LlcKind::Vsc => Box::new(VscLlc::new(geom, policy)),
            LlcKind::Dcc => Box::new(DccLlc::new(geom, policy)),
        }
    }

    /// Instantiates the organization with a [`RingSink`] retaining the
    /// most recent `capacity` cache events (`bvsim trace`). Same policy
    /// construction as [`LlcKind::build`] — identical seeds and logical
    /// way counts — so a traced run replays the untraced run exactly,
    /// plus events.
    #[must_use]
    pub fn build_traced(
        self,
        geom: CacheGeometry,
        policy: PolicyKind,
        sink: RingSink,
    ) -> Box<dyn LlcOrganization> {
        let (sets, ways) = (geom.sets(), geom.ways());
        let bv = |vp, mode, comp: Box<dyn Compressor>, sink| {
            Box::new(BaseVictimLlc::with_sink(
                geom,
                policy.instantiate(sets, ways),
                vp,
                mode,
                comp,
                sink,
            )) as Box<dyn LlcOrganization>
        };
        let default_vp = VictimPolicyKind::EcmLargestBase;
        match self {
            LlcKind::Uncompressed => Box::new(UncompressedLlc::with_sink(
                geom,
                policy.instantiate(sets, ways),
                sink,
            )),
            LlcKind::TwoTag => Box::new(TwoTagLlc::with_sink(
                geom,
                policy.instantiate(sets, ways * 2),
                sink,
            )),
            LlcKind::TwoTagEcm => Box::new(TwoTagEcmLlc::with_sink(
                geom,
                policy.instantiate(sets, ways * 2),
                sink,
            )),
            LlcKind::BaseVictim => bv(
                default_vp,
                InclusionMode::Inclusive,
                Box::new(Bdi::new()),
                sink,
            ),
            LlcKind::BaseVictimWith(vp) => {
                bv(vp, InclusionMode::Inclusive, Box::new(Bdi::new()), sink)
            }
            LlcKind::BaseVictimNonInclusive => bv(
                default_vp,
                InclusionMode::NonInclusive,
                Box::new(Bdi::new()),
                sink,
            ),
            LlcKind::BaseVictimCompressor(ck) => {
                bv(default_vp, InclusionMode::Inclusive, ck.build(), sink)
            }
            LlcKind::Vsc => Box::new(VscLlc::with_sink(
                geom,
                policy.instantiate(sets, ways * 2),
                sink,
            )),
            LlcKind::Dcc => Box::new(DccLlc::with_sink(
                geom,
                policy.instantiate(sets, ways * 2),
                sink,
            )),
        }
    }
}

/// A complete single-system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// L1 instruction cache geometry (32 KB 8-way).
    pub l1i: CacheGeometry,
    /// L1 data cache geometry (32 KB 8-way).
    pub l1d: CacheGeometry,
    /// Unified L2 geometry (256 KB 8-way).
    pub l2: CacheGeometry,
    /// LLC geometry (2 MB 16-way single-thread default).
    pub llc: CacheGeometry,
    /// LLC organization.
    pub llc_kind: LlcKind,
    /// LLC replacement policy (1-bit NRU default, per Section V).
    pub llc_policy: PolicyKind,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Prefetch degree (lines fetched ahead per trained stream); 0
    /// disables prefetching.
    pub prefetch_degree: u32,
    /// Extra LLC pipeline cycles for this configuration on top of the
    /// base LLC latency (the paper charges +1 for the 3 MB cache's larger
    /// arrays).
    pub extra_llc_latency: u32,
}

impl SimConfig {
    /// The paper's single-thread configuration with the given LLC
    /// organization: 2 MB 16-way inclusive LLC, NRU replacement.
    #[must_use]
    pub fn single_thread(llc_kind: LlcKind) -> SimConfig {
        SimConfig {
            core: CoreConfig::default(),
            l1i: CacheGeometry::new(32 * 1024, 8, 64),
            l1d: CacheGeometry::new(32 * 1024, 8, 64),
            l2: CacheGeometry::new(256 * 1024, 8, 64),
            llc: CacheGeometry::new(2 * 1024 * 1024, 16, 64),
            llc_kind,
            llc_policy: PolicyKind::Nru,
            dram: DramConfig::default(),
            prefetch_degree: 4,
            extra_llc_latency: 0,
        }
    }

    /// The paper's multi-program configuration: 4 MB 16-way shared LLC.
    #[must_use]
    pub fn multi_program(llc_kind: LlcKind) -> SimConfig {
        let mut cfg = SimConfig::single_thread(llc_kind);
        cfg.llc = CacheGeometry::new(4 * 1024 * 1024, 16, 64);
        cfg
    }

    /// Replaces the LLC geometry, charging one extra access cycle when the
    /// capacity grows beyond the 2 MB baseline (Section VI.A: the 3 MB
    /// cache "adds an extra cycle of latency because of the increase in
    /// tag and data array sizes").
    #[must_use]
    pub fn with_llc_size(mut self, bytes: usize, ways: usize) -> SimConfig {
        self.llc = CacheGeometry::new(bytes, ways, 64);
        self.extra_llc_latency = u32::from(bytes > 2 * 1024 * 1024);
        self
    }

    /// Replaces the LLC replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> SimConfig {
        self.llc_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        assert_eq!(cfg.core.width, 4);
        assert_eq!(cfg.core.l1_latency, 3);
        assert_eq!(cfg.core.l2_latency, 10);
        assert_eq!(cfg.core.llc_latency, 24);
        assert_eq!(cfg.llc.sets(), 2048);
        assert_eq!(cfg.dram.channels, 2);
        assert_eq!(cfg.dram.t_cl, 15);
        assert_eq!(cfg.dram.t_ras, 34);
    }

    #[test]
    fn multi_program_uses_4mb() {
        let cfg = SimConfig::multi_program(LlcKind::BaseVictim);
        assert_eq!(cfg.llc.size_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn larger_caches_pay_a_cycle() {
        let cfg =
            SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(3 * 1024 * 1024, 24);
        assert_eq!(cfg.extra_llc_latency, 1);
        assert_eq!(cfg.llc.ways(), 24);
        let same =
            SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(2 * 1024 * 1024, 32);
        assert_eq!(same.extra_llc_latency, 0);
    }

    #[test]
    fn every_kind_builds() {
        let geom = CacheGeometry::new(64 * 1024, 16, 64);
        for kind in [
            LlcKind::Uncompressed,
            LlcKind::TwoTag,
            LlcKind::TwoTagEcm,
            LlcKind::BaseVictim,
            LlcKind::BaseVictimWith(VictimPolicyKind::RandomFit),
            LlcKind::BaseVictimNonInclusive,
            LlcKind::BaseVictimCompressor(CompressorKind::Fpc),
            LlcKind::Vsc,
            LlcKind::Dcc,
        ] {
            let org = kind.build(geom, PolicyKind::Nru);
            assert!(!org.name().is_empty());
        }
    }
}
