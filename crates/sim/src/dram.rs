//! DDR3-1600 main-memory timing model.
//!
//! Two channels of DDR3-1600 with 15-15-15-34 timing (Section V). Each
//! channel has eight banks with open-page row buffers; requests are
//! serviced in arrival order per bank, and the shared channel data bus
//! serializes bursts. All external times are in **core cycles** (4 GHz
//! core, 800 MHz memory clock: 5 core cycles per memory cycle).

use crate::config::DramConfig;

/// Aggregate DRAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// 64 B read transfers serviced.
    pub reads: u64,
    /// 64 B write transfers serviced.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (precharge + activate).
    pub row_misses: u64,
}

impl DramStats {
    /// All transfers.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate in [0, 1].
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }

    /// Counter-wise difference `self - snapshot`, for excluding warmup.
    #[must_use]
    pub fn since(&self, snapshot: &DramStats) -> DramStats {
        DramStats {
            reads: self.reads - snapshot.reads,
            writes: self.writes - snapshot.writes,
            row_hits: self.row_hits - snapshot.row_hits,
            row_misses: self.row_misses - snapshot.row_misses,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64, // core cycle when the bank can accept a new command
}

/// The DRAM timing model.
///
/// # Examples
///
/// ```
/// use bv_sim::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let completion = dram.access(1000, 0xdead_0000u64 & !63, false);
/// assert!(completion > 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free_at: Vec<u64>, // per channel
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM system.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Dram {
        let banks = (cfg.channels * cfg.banks_per_channel) as usize;
        Dram {
            cfg,
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                };
                banks
            ],
            bus_free_at: vec![0; cfg.channels as usize],
            stats: DramStats::default(),
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Issues one 64 B transfer at core cycle `now`; returns the core
    /// cycle at which the data is available (reads) or the write is
    /// retired. Bank and bus occupancy are updated, so later requests
    /// observe queueing delay.
    ///
    /// Writes and prefetch reads go through this path; demand reads use
    /// [`demand_access`](Dram::demand_access), which the controller
    /// prioritizes.
    pub fn access(&mut self, now: u64, line_byte_addr: u64, is_write: bool) -> u64 {
        self.access_with_window(
            now,
            line_byte_addr,
            is_write,
            u64::from(self.cfg.queue_window),
        )
    }

    /// Issues a demand read, which the controller schedules ahead of
    /// queued prefetch and write work: it observes at most
    /// [`DramConfig::demand_window`] cycles of backlog.
    pub fn demand_access(&mut self, now: u64, line_byte_addr: u64) -> u64 {
        self.access_with_window(
            now,
            line_byte_addr,
            false,
            u64::from(self.cfg.demand_window),
        )
    }

    fn access_with_window(
        &mut self,
        now: u64,
        line_byte_addr: u64,
        is_write: bool,
        window: u64,
    ) -> u64 {
        // Address mapping: line interleave across channels, then banks,
        // with the row above.
        let line = line_byte_addr / 64;
        let channel = (line % u64::from(self.cfg.channels)) as usize;
        let bank_in_ch =
            (line / u64::from(self.cfg.channels)) % u64::from(self.cfg.banks_per_channel);
        let bank_idx = channel * self.cfg.banks_per_channel as usize + bank_in_ch as usize;
        let lines_per_row = self.cfg.row_bytes / 64;
        let row = line
            / (u64::from(self.cfg.channels) * u64::from(self.cfg.banks_per_channel))
            / lines_per_row;

        let ccm = u64::from(self.cfg.core_cycles_per_mem_cycle);
        let cfg = self.cfg;

        // Finite controller queue: backlog beyond this request's window is
        // shed (stale prefetch work is dropped or reordered behind it), so
        // no request ever observes unbounded queueing and demand reads
        // bypass queued prefetch work.
        let horizon = now + window;
        self.bus_free_at[channel] = self.bus_free_at[channel].min(horizon);
        self.banks[bank_idx].ready_at = self.banks[bank_idx].ready_at.min(horizon);

        let start = now.max(self.banks[bank_idx].ready_at);

        let (array_time, row_hit) = match self.banks[bank_idx].open_row {
            Some(open) if open == row => (cfg.t_cl, true),
            Some(_) => (cfg.t_rp + cfg.t_rcd + cfg.t_cl, false),
            None => (cfg.t_rcd + cfg.t_cl, false),
        };
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.banks[bank_idx].open_row = Some(row);

        let data_ready = start + u64::from(array_time) * ccm;
        // The channel bus serializes the burst transfer.
        let burst_start = data_ready.max(self.bus_free_at[channel]);
        let burst_end = burst_start + u64::from(cfg.t_burst) * ccm;
        self.bus_free_at[channel] = burst_end;

        // Bank busy until the burst drains plus (on row misses) the
        // remainder of tRAS.
        let ras_bound = if row_hit {
            burst_end
        } else {
            start + u64::from(cfg.t_ras) * ccm
        };
        self.banks[bank_idx].ready_at = burst_end.max(ras_bound);

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        burst_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn idle_row_miss_latency_matches_timing() {
        let mut d = dram();
        let done = d.access(0, 0, false);
        // First access: tRCD + tCL + burst = (15 + 15 + 4) mem cycles x 5.
        assert_eq!(done, (15 + 15 + 4) * 5);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn row_hits_are_faster() {
        let mut d = dram();
        let first = d.access(0, 0, false);
        // Same line again (same row): tCL + burst only.
        let second = d.access(first, 0, false);
        assert_eq!(second - first, (15 + 4) * 5);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let first = d.access(0, 0, false);
        // A different row in the same bank: tRP + tRCD + tCL + burst, and
        // the bank must also satisfy tRAS from the first activation.
        let same_bank_new_row = 16 * 8 * 1024; // channels*banks * row_bytes
        let second = d.access(first, same_bank_new_row, false);
        assert!(second - first >= (15 + 15 + 15 + 4) * 5);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = dram();
        let a = d.access(0, 0, false); // channel 0
        let b = d.access(0, 64, false); // channel 1
                                        // Both complete with idle latency: no serialization.
        assert_eq!(a, b);
    }

    #[test]
    fn same_channel_bus_serializes_bursts() {
        let mut d = dram();
        // Two different banks on channel 0: array access overlaps, bursts
        // serialize on the channel bus.
        let a = d.access(0, 0, false);
        let b = d.access(0, 128, false);
        assert_eq!(b - a, 4 * 5, "second burst queues behind the first");
    }

    #[test]
    fn queueing_builds_under_load() {
        let mut d = dram();
        let mut last = 0;
        for i in 0..64 {
            last = d.access(0, i * 64, false);
        }
        // 64 transfers on 2 channels: at least 32 bursts serialized per
        // channel.
        assert!(last >= 32 * 4 * 5);
        assert_eq!(d.stats().reads, 64);
    }

    #[test]
    fn writes_count_separately() {
        let mut d = dram();
        d.access(0, 0, true);
        d.access(0, 64, false);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().accesses(), 2);
    }
}
