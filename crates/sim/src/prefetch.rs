//! Multi-stream prefetching (Section V: "aggressive multi-stream
//! instruction and data prefetchers").
//!
//! A classic stream prefetcher: accesses are grouped into 4 KB regions;
//! when a region shows two consecutive accesses with a consistent line
//! delta, a stream is trained and the prefetcher runs `degree` lines ahead
//! of the demand stream in that direction.

const REGION_BITS: u32 = 12; // 4 KB regions
const TABLE_SIZE: usize = 64;

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    region: u64,
    last_line: u64,
    delta: i64,
    confidence: u8,
    last_issued: u64,
    lru: u64,
}

/// A per-core multi-stream prefetcher.
///
/// # Examples
///
/// ```
/// use bv_sim::StreamPrefetcher;
///
/// let mut pf = StreamPrefetcher::new(4);
/// assert!(pf.observe(0x1000).is_empty()); // first touch: training
/// let prefetches = pf.observe(0x1040);    // +1 line: stream confirmed
/// assert_eq!(prefetches, vec![0x1080, 0x10c0, 0x1100, 0x1140]);
/// ```
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    degree: u32,
    table: Vec<StreamEntry>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher issuing `degree` lines ahead (0 disables it).
    #[must_use]
    pub fn new(degree: u32) -> StreamPrefetcher {
        StreamPrefetcher {
            degree,
            table: Vec::with_capacity(TABLE_SIZE),
            clock: 0,
            issued: 0,
        }
    }

    /// Total prefetch addresses issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access to `byte_addr` and returns the byte
    /// addresses to prefetch (possibly empty).
    pub fn observe(&mut self, byte_addr: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        self.clock += 1;
        let line = byte_addr >> 6;
        let region = byte_addr >> REGION_BITS;

        let pos = self.table.iter().position(|e| e.region == region);
        let mut out = Vec::new();
        match pos {
            Some(i) => {
                let mut e = self.table[i];
                let delta = line as i64 - e.last_line as i64;
                if delta == 0 {
                    // Same line: nothing to learn.
                } else if delta == e.delta {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.delta = delta;
                    e.confidence = 1;
                }
                e.last_line = line;
                e.lru = self.clock;
                if e.confidence >= 1 && e.delta != 0 {
                    // Run ahead of the demand stream without re-issuing
                    // lines already covered.
                    for k in 1..=i64::from(self.degree) {
                        let target = line as i64 + e.delta * k;
                        if target <= 0 {
                            break;
                        }
                        let target = target as u64;
                        if e.last_issued == 0
                            || (e.delta > 0 && target > e.last_issued)
                            || (e.delta < 0 && target < e.last_issued)
                        {
                            out.push(target << 6);
                            e.last_issued = target;
                        }
                    }
                }
                self.table[i] = e;
            }
            None => {
                // Page handoff: if an existing stream predicts this line
                // as its next step, carry the training into the new
                // region instead of starting cold (hardware streamers do
                // the same at page boundaries).
                let inherited = self
                    .table
                    .iter()
                    .find(|e| e.delta != 0 && e.last_line as i64 + e.delta == line as i64)
                    .map(|e| (e.delta, e.confidence, e.last_issued));
                if self.table.len() == TABLE_SIZE {
                    // Replace the least recently used stream.
                    let oldest = self
                        .table
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                        .expect("table non-empty");
                    self.table.swap_remove(oldest);
                }
                let (delta, confidence, last_issued) = inherited.unwrap_or((0, 0, 0));
                let mut entry = StreamEntry {
                    region,
                    last_line: line,
                    delta,
                    confidence,
                    last_issued,
                    lru: self.clock,
                };
                if entry.confidence >= 1 && entry.delta != 0 {
                    for k in 1..=i64::from(self.degree) {
                        let target = line as i64 + entry.delta * k;
                        if target <= 0 {
                            break;
                        }
                        let target = target as u64;
                        if entry.last_issued == 0
                            || (entry.delta > 0 && target > entry.last_issued)
                            || (entry.delta < 0 && target < entry.last_issued)
                        {
                            out.push(target << 6);
                            entry.last_issued = target;
                        }
                    }
                }
                self.table.push(entry);
            }
        }
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_trains_and_runs_ahead() {
        let mut pf = StreamPrefetcher::new(4);
        assert!(pf.observe(0x10_0000).is_empty());
        let p = pf.observe(0x10_0040);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0x10_0080);
        // The next demand access only extends the run-ahead window by one.
        let p2 = pf.observe(0x10_0080);
        assert_eq!(p2, vec![0x10_0180]);
    }

    #[test]
    fn strided_streams_are_learned() {
        let mut pf = StreamPrefetcher::new(2);
        pf.observe(0x20_0000);
        let p = pf.observe(0x20_0100); // stride 4 lines
        assert_eq!(p, vec![0x20_0200, 0x20_0300]);
    }

    #[test]
    fn descending_streams_work() {
        let mut pf = StreamPrefetcher::new(2);
        pf.observe(0x30_0400);
        let p = pf.observe(0x30_03c0);
        assert_eq!(p, vec![0x30_0380, 0x30_0340]);
    }

    #[test]
    fn random_accesses_do_not_trigger() {
        let mut pf = StreamPrefetcher::new(4);
        let mut state = 12345u64;
        let mut total = 0;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Random lines within one region would alias; use many regions.
            let addr = (state >> 16) & 0x3fff_ffc0;
            total += pf.observe(addr).len();
        }
        assert!(
            total < 40,
            "random stream should rarely trigger, issued {total}"
        );
    }

    #[test]
    fn zero_degree_disables() {
        let mut pf = StreamPrefetcher::new(0);
        pf.observe(0x1000);
        assert!(pf.observe(0x1040).is_empty());
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut pf = StreamPrefetcher::new(2);
        for i in 0..1000u64 {
            pf.observe(i << REGION_BITS);
        }
        assert!(pf.table.len() <= TABLE_SIZE);
    }

    #[test]
    fn same_line_repeats_do_not_retrain() {
        let mut pf = StreamPrefetcher::new(2);
        pf.observe(0x50_0000);
        pf.observe(0x50_0040);
        let before = pf.issued();
        // Re-touching the same line issues nothing new.
        let p = pf.observe(0x50_0040);
        assert!(p.is_empty());
        assert_eq!(pf.issued(), before);
    }
}
