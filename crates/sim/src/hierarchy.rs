//! The three-level inclusive cache hierarchy.
//!
//! Per core: 32 KB L1I + 32 KB L1D (write-back, write-allocate) and a
//! unified 256 KB L2, all LRU. Shared: the LLC organization under study
//! and the DDR3 memory. Inclusion is strict at every level — an LLC
//! displacement back-invalidates the L2 and L1s, and an L2 eviction
//! back-invalidates the L1s — matching the paper's inclusive hierarchy
//! with back-invalidations (Section IV.B).

use crate::config::SimConfig;
use crate::dram::Dram;
use crate::prefetch::StreamPrefetcher;
use bv_cache::{BasicCache, LineAddr, PolicyKind};
use bv_compress::CacheLine;
use bv_core::{HitKind, InclusionAgent, LlcOrganization};
use bv_trace::{AccessKind, TraceEvent, TraceGenerator};

/// Where a demand access was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LevelHit {
    /// L1 instruction or data cache.
    L1,
    /// Unified L2.
    L2,
    /// LLC Baseline (or sole) array.
    LlcBase,
    /// LLC Victim cache (Base-Victim only).
    LlcVictim,
    /// Main memory.
    Memory,
}

/// Result of one demand access through the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct AccessOutcome {
    /// The level that supplied the data.
    pub level: LevelHit,
    /// Load-to-use latency in core cycles (includes DRAM queueing for
    /// memory accesses).
    pub latency: u64,
}

/// Private per-core caches plus the core's prefetcher.
#[derive(Debug)]
pub struct CoreCaches {
    l1i: BasicCache,
    l1d: BasicCache,
    l2: BasicCache,
    prefetcher: StreamPrefetcher,
}

impl CoreCaches {
    /// Creates the private caches for one core.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> CoreCaches {
        CoreCaches {
            l1i: BasicCache::new(cfg.l1i, PolicyKind::Lru),
            l1d: BasicCache::new(cfg.l1d, PolicyKind::Lru),
            l2: BasicCache::new(cfg.l2, PolicyKind::Lru),
            prefetcher: StreamPrefetcher::new(cfg.prefetch_degree),
        }
    }

    /// The L1 data cache (for stats inspection).
    #[must_use]
    pub fn l1d(&self) -> &BasicCache {
        &self.l1d
    }

    /// The unified L2 (for stats inspection).
    #[must_use]
    pub fn l2(&self) -> &BasicCache {
        &self.l2
    }
}

/// The shared uncore: LLC organization + DRAM.
pub struct Uncore {
    llc: Box<dyn LlcOrganization>,
    dram: Dram,
}

impl Uncore {
    /// Creates the shared uncore from a configuration.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Uncore {
        Uncore::with_llc(cfg, cfg.llc_kind.build(cfg.llc, cfg.llc_policy))
    }

    /// Creates the shared uncore around a pre-built LLC — the traced
    /// path, where the caller constructs the organization with an event
    /// sink (`LlcKind::build_traced`) before handing it over.
    #[must_use]
    pub fn with_llc(cfg: &SimConfig, llc: Box<dyn LlcOrganization>) -> Uncore {
        Uncore {
            llc,
            dram: Dram::new(cfg.dram),
        }
    }

    /// The LLC organization under study.
    #[must_use]
    pub fn llc(&self) -> &dyn LlcOrganization {
        self.llc.as_ref()
    }

    /// Mutable access to the LLC organization, for draining its event
    /// sink between phases of a traced run.
    pub fn llc_mut(&mut self) -> &mut dyn LlcOrganization {
        self.llc.as_mut()
    }

    /// The DRAM model.
    #[must_use]
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

/// Back-invalidation agent over every core's private caches.
struct InnerAgent<'a> {
    cores: &'a mut [CoreCaches],
}

impl InclusionAgent for InnerAgent<'_> {
    fn back_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let mut dirty: Option<CacheLine> = None;
        for core in self.cores.iter_mut() {
            // L1 data is the freshest; take the first dirty copy found.
            for cache in [&mut core.l1d, &mut core.l1i, &mut core.l2] {
                if let Some(ev) = cache.invalidate(addr) {
                    if ev.dirty && dirty.is_none() {
                        dirty = Some(ev.data);
                    }
                }
            }
        }
        dirty
    }
}

/// A single-core view: one set of private caches plus the uncore. For
/// multi-core simulation, `Hierarchy::access_on` takes the core index.
pub struct Hierarchy {
    cfg: SimConfig,
    cores: Vec<CoreCaches>,
    uncore: Uncore,
}

impl Hierarchy {
    /// Builds a hierarchy with `n_cores` private cache sets sharing one
    /// LLC and DRAM.
    #[must_use]
    pub fn new(cfg: SimConfig, n_cores: usize) -> Hierarchy {
        Hierarchy {
            cfg,
            cores: (0..n_cores).map(|_| CoreCaches::new(&cfg)).collect(),
            uncore: Uncore::new(&cfg),
        }
    }

    /// Builds a hierarchy around a pre-built LLC (the traced path).
    #[must_use]
    pub fn with_llc(cfg: SimConfig, n_cores: usize, llc: Box<dyn LlcOrganization>) -> Hierarchy {
        Hierarchy {
            cfg,
            cores: (0..n_cores).map(|_| CoreCaches::new(&cfg)).collect(),
            uncore: Uncore::with_llc(&cfg, llc),
        }
    }

    /// The shared uncore.
    #[must_use]
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// Mutable access to the shared uncore.
    pub fn uncore_mut(&mut self) -> &mut Uncore {
        &mut self.uncore
    }

    /// Consumes the hierarchy and returns the LLC organization, so a
    /// traced run's caller can drain the sink after the run.
    #[must_use]
    pub fn into_llc(self) -> Box<dyn LlcOrganization> {
        self.uncore.llc
    }

    /// One core's private caches.
    #[must_use]
    pub fn core(&self, id: usize) -> &CoreCaches {
        &self.cores[id]
    }

    /// LLC hit latency including the organization's tag and decompression
    /// penalties for a hit of kind `kind`.
    fn llc_hit_latency(&self, kind: HitKind) -> u64 {
        let base = u64::from(self.cfg.core.llc_latency + self.cfg.extra_llc_latency)
            + u64::from(self.uncore.llc.tag_latency_penalty());
        let decompress = kind
            .size()
            .map_or(0, |s| u64::from(self.uncore.llc.decompression_latency(s)));
        base + decompress
    }

    /// Fills a line into a core's L2, handling the L2 eviction: dirty
    /// victims write back to the LLC, clean victims send a downgrade hint
    /// (consumed by CHAR-style policies).
    fn fill_l2(&mut self, core_id: usize, addr: LineAddr, data: CacheLine) {
        let evicted = self.cores[core_id].l2.fill(addr, data, false);
        if let Some(ev) = evicted {
            // Enforce L1 ⊆ L2.
            let mut dirty = ev.dirty;
            let mut wdata = ev.data;
            let core = &mut self.cores[core_id];
            for l1 in [&mut core.l1d, &mut core.l1i] {
                if let Some(e1) = l1.invalidate(ev.addr) {
                    if e1.dirty {
                        dirty = true;
                        wdata = e1.data;
                    }
                }
            }
            if dirty {
                let mut agent = InnerAgent {
                    cores: &mut self.cores,
                };
                self.uncore.llc.writeback(ev.addr, wdata, &mut agent);
            } else {
                self.uncore.llc.hint_downgrade(ev.addr);
            }
        }
    }

    /// Fills a line into a core's L1 (instruction or data side), handling
    /// the L1 eviction: dirty victims write into the L2.
    fn fill_l1(&mut self, core_id: usize, ifetch: bool, addr: LineAddr, data: CacheLine) {
        let core = &mut self.cores[core_id];
        let l1 = if ifetch { &mut core.l1i } else { &mut core.l1d };
        if let Some(ev) = l1.fill(addr, data, false) {
            if ev.dirty {
                // L1 ⊆ L2 holds, so this write hits the L2.
                let wrote = core.l2.write(ev.addr, ev.data);
                debug_assert!(wrote, "L1 victim {0:?} missing from L2", ev.addr);
            }
        }
    }

    /// Performs one demand access at core-cycle `now`, returning where it
    /// hit and its latency. `gen` supplies line data for fills and store
    /// values.
    pub fn access_on(
        &mut self,
        core_id: usize,
        ev: &TraceEvent,
        now: u64,
        gen: &TraceGenerator,
    ) -> AccessOutcome {
        let addr = LineAddr::from_byte_addr(ev.addr);
        let ifetch = ev.kind == AccessKind::Ifetch;
        let is_store = ev.kind.is_write();
        let store_data = is_store.then(|| gen.line_data(ev.addr));

        // L1 lookup.
        let core = &mut self.cores[core_id];
        let l1 = if ifetch { &mut core.l1i } else { &mut core.l1d };
        let l1_hit = match store_data {
            Some(data) => l1.write(addr, data),
            None => l1.read(addr),
        };

        // Train the prefetcher on every demand access. Section V models
        // "aggressive multi-stream instruction and data prefetchers", so
        // instruction fetches train streams too (sequential code is the
        // easiest stream there is).
        let prefetches = core.prefetcher.observe(ev.addr);

        let outcome = if l1_hit {
            AccessOutcome {
                level: LevelHit::L1,
                latency: u64::from(self.cfg.core.l1_latency),
            }
        } else {
            let outcome = self.access_below_l1(core_id, ifetch, addr, now, gen);
            // Write-allocate: apply the store on top of the filled line.
            if let Some(data) = store_data {
                let core = &mut self.cores[core_id];
                let wrote = core.l1d.write(addr, data);
                debug_assert!(wrote, "write-allocate failed for {addr:?}");
            }
            outcome
        };

        // Issue prefetches below the L1 (they fill L2 + LLC).
        for pa in prefetches {
            self.prefetch_line(core_id, pa, now, gen);
        }

        outcome
    }

    /// L2 -> LLC -> memory path for an L1 miss, filling each level on the
    /// way back.
    fn access_below_l1(
        &mut self,
        core_id: usize,
        ifetch: bool,
        addr: LineAddr,
        now: u64,
        gen: &TraceGenerator,
    ) -> AccessOutcome {
        // L2 lookup.
        if self.cores[core_id].l2.read(addr) {
            let data = self.cores[core_id]
                .l2
                .peek_data(addr)
                .expect("hit line has data");
            self.fill_l1(core_id, ifetch, addr, data);
            return AccessOutcome {
                level: LevelHit::L2,
                latency: u64::from(self.cfg.core.l2_latency),
            };
        }

        // LLC lookup.
        let (kind, llc_data) = {
            let mut agent = InnerAgent {
                cores: &mut self.cores,
            };
            let out = self.uncore.llc.read(addr, &mut agent);
            // Every memory write the LLC performed hits the DRAM write
            // path (bandwidth; not on the load's critical path).
            for _ in 0..out.effects.memory_writes {
                self.uncore.dram.access(now, addr.byte_addr(), true);
            }
            (out.kind, self.uncore.llc.peek_data(addr))
        };

        if kind.is_hit() {
            let data = llc_data.expect("hit line has data");
            let latency = self.llc_hit_latency(kind);
            self.fill_l2(core_id, addr, data);
            self.fill_l1(core_id, ifetch, addr, data);
            let level = match kind {
                HitKind::Victim(_) => LevelHit::LlcVictim,
                _ => LevelHit::LlcBase,
            };
            return AccessOutcome { level, latency };
        }

        // Memory fetch. The request leaves the core after the LLC lookup
        // pipeline; the controller prioritizes it over queued prefetches.
        let issue = now + u64::from(self.cfg.core.llc_latency);
        let done = self.uncore.dram.demand_access(issue, addr.byte_addr());
        let data = gen.line_data(addr.byte_addr());
        {
            let mut agent = InnerAgent {
                cores: &mut self.cores,
            };
            let out = self.uncore.llc.fill(addr, data, &mut agent);
            for _ in 0..out.effects.memory_writes {
                self.uncore.dram.access(now, addr.byte_addr(), true);
            }
        }
        self.fill_l2(core_id, addr, data);
        self.fill_l1(core_id, ifetch, addr, data);
        AccessOutcome {
            level: LevelHit::Memory,
            latency: done.saturating_sub(now),
        }
    }

    /// Issues one prefetch: fills LLC (and L2) if absent, consuming DRAM
    /// bandwidth off the critical path.
    fn prefetch_line(&mut self, core_id: usize, byte_addr: u64, now: u64, gen: &TraceGenerator) {
        let addr = LineAddr::from_byte_addr(byte_addr);
        if self.cores[core_id].l2.probe(addr).is_some() {
            return; // already close to the core
        }
        let fills_before = self.uncore.llc.stats().prefetch_fills;
        let data = gen.line_data(byte_addr);
        {
            let mut agent = InnerAgent {
                cores: &mut self.cores,
            };
            if let Some(out) = self.uncore.llc.prefetch_fill(addr, data, &mut agent) {
                for _ in 0..out.effects.memory_writes {
                    self.uncore.dram.access(now, byte_addr, true);
                }
            }
        }
        // A new LLC fill means the line actually came from memory.
        if self.uncore.llc.stats().prefetch_fills > fills_before {
            self.uncore.dram.access(now, byte_addr, false);
        }
        // Bring the line into the L2 as well (data prefetchers fill the
        // core-side caches in the modeled design).
        let data = self
            .uncore
            .llc
            .peek_data(addr)
            .expect("line resident after prefetch");
        if self.cores[core_id].l2.probe(addr).is_none() {
            self.fill_l2(core_id, addr, data);
        }
    }

    /// Checks strict inclusion: every L1/L2-resident line is LLC-resident.
    /// Used by integration tests.
    ///
    /// # Panics
    ///
    /// Panics if inclusion is violated.
    pub fn assert_inclusion(&self) {
        for (i, core) in self.cores.iter().enumerate() {
            for cache in [&core.l1i, &core.l1d, &core.l2] {
                for line in cache.resident_lines() {
                    assert!(
                        self.uncore.llc.contains(line),
                        "core {i}: line {line:?} in inner cache but not LLC"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LlcKind;
    use bv_trace::synth::{KernelSpec, WorkloadSpec};
    use bv_trace::{DataProfile, KernelKind};

    fn tiny_workload() -> WorkloadSpec {
        WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::Loop,
                region_bytes: 1 << 20,
                weight: 1,
                store_fraction: 64,
                profile: DataProfile::SmallInt,
            }],
            mem_fraction: 128,
            ifetch_fraction: 16,
            code_bytes: 16 << 10,
            seed: 7,
        }
    }

    fn event(addr: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent {
            gap: 0,
            pc: 0x400000,
            addr,
            kind,
            dependent: false,
        }
    }

    #[test]
    fn l1_hit_after_fill() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        let e = event(0x1_0000_0000, AccessKind::Load);
        let first = h.access_on(0, &e, 0, &gen);
        assert_eq!(first.level, LevelHit::Memory);
        let second = h.access_on(0, &e, first.latency, &gen);
        assert_eq!(second.level, LevelHit::L1);
        assert_eq!(second.latency, 3);
    }

    #[test]
    fn memory_latency_includes_dram() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        let out = h.access_on(0, &event(0x1_0000_0000, AccessKind::Load), 0, &gen);
        // LLC pipeline (24) + DRAM idle row miss ((15+15+4)*5 = 170).
        assert!(out.latency >= 170, "latency {} too small", out.latency);
    }

    #[test]
    fn inclusion_holds_under_traffic() {
        let cfg = SimConfig::single_thread(LlcKind::BaseVictim);
        let mut h = Hierarchy::new(cfg, 1);
        let mut gen = tiny_workload().generator();
        for i in 0..20_000 {
            let e = gen.next_event();
            h.access_on(0, &e, i, &gen);
            if i % 4096 == 0 {
                h.assert_inclusion();
            }
        }
        h.assert_inclusion();
    }

    #[test]
    fn streaming_accesses_get_prefetched() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        let base = 0x2_0000_0000u64;
        let mut memory_hits = 0;
        for i in 0..64 {
            let out = h.access_on(0, &event(base + i * 64, AccessKind::Load), i, &gen);
            if out.level == LevelHit::Memory {
                memory_hits += 1;
            }
        }
        // After training (2 accesses), the stream runs ahead: most demand
        // accesses find their lines in the L2.
        assert!(
            memory_hits <= 4,
            "prefetcher ineffective: {memory_hits} memory-level accesses"
        );
    }

    #[test]
    fn stores_dirty_lines_and_write_back() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        // Store to one line, then walk far past both L1 and L2 capacity so
        // the dirty line is forced down to the LLC.
        let victim = 0x1_0000_0000u64;
        h.access_on(0, &event(victim, AccessKind::Store), 0, &gen);
        for i in 1..20_000u64 {
            h.access_on(0, &event(victim + i * 64 * 64, AccessKind::Load), i, &gen);
        }
        // The dirty line must either still be dirty somewhere in the
        // hierarchy or have been written back to DRAM.
        let wb = h.uncore().llc().stats().writeback_hits;
        assert!(wb > 0, "no L2 writeback reached the LLC");
    }

    #[test]
    fn ifetch_misses_use_the_instruction_cache() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        let code = 0x40_0000u64;
        let first = h.access_on(0, &event(code, AccessKind::Ifetch), 0, &gen);
        assert_eq!(first.level, LevelHit::Memory);
        let second = h.access_on(0, &event(code, AccessKind::Ifetch), 1000, &gen);
        assert_eq!(second.level, LevelHit::L1, "L1I holds the line");
        // The same address on the data side is an L2 hit, not an L1D hit:
        // the line was filled into L1I and L2, not L1D.
        let data_side = h.access_on(0, &event(code, AccessKind::Load), 2000, &gen);
        assert_eq!(data_side.level, LevelHit::L2);
    }

    #[test]
    fn store_write_allocates_and_dirties() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let mut gen = tiny_workload().generator();
        // Advance the generator so line_data has an epoch table.
        for _ in 0..10 {
            gen.next_event();
        }
        let a = 0x1_0000_0000u64;
        let out = h.access_on(0, &event(a, AccessKind::Store), 0, &gen);
        assert_eq!(
            out.level,
            LevelHit::Memory,
            "write-allocate fetches the line"
        );
        // The line is now dirty in the L1D.
        let addr = LineAddr::from_byte_addr(a);
        assert_eq!(h.core(0).l1d().is_dirty(addr), Some(true));
        // A subsequent load hits the L1D.
        let out = h.access_on(0, &event(a, AccessKind::Load), 100, &gen);
        assert_eq!(out.level, LevelHit::L1);
    }

    #[test]
    fn prefetches_fill_l2_but_not_l1() {
        let cfg = SimConfig::single_thread(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 1);
        let gen = tiny_workload().generator();
        let base = 0x3_0000_0000u64;
        // Train a stream: two sequential accesses trigger run-ahead.
        h.access_on(0, &event(base, AccessKind::Load), 0, &gen);
        h.access_on(0, &event(base + 64, AccessKind::Load), 10, &gen);
        // The next line was prefetched into L2 (and LLC), not L1.
        let next = LineAddr::from_byte_addr(base + 128);
        assert!(h.core(0).l2().probe(next).is_some(), "prefetched into L2");
        assert!(h.core(0).l1d().probe(next).is_none(), "not into L1");
        let out = h.access_on(0, &event(base + 128, AccessKind::Load), 20, &gen);
        assert_eq!(out.level, LevelHit::L2);
    }

    #[test]
    fn multicore_private_caches_are_isolated() {
        let cfg = SimConfig::multi_program(LlcKind::Uncompressed);
        let mut h = Hierarchy::new(cfg, 2);
        let gen = tiny_workload().generator();
        let a = 0x5_0000_0000u64;
        h.access_on(0, &event(a, AccessKind::Load), 0, &gen);
        // Core 1 misses its private caches but hits the shared LLC.
        let out = h.access_on(1, &event(a, AccessKind::Load), 100, &gen);
        assert_eq!(out.level, LevelHit::LlcBase, "shared LLC serves core 1");
    }

    #[test]
    fn victim_hits_report_their_level() {
        let cfg = SimConfig::single_thread(LlcKind::BaseVictim);
        let mut h = Hierarchy::new(cfg, 1);
        let mut gen = tiny_workload().generator();
        let mut victim_hits = 0;
        for i in 0..200_000 {
            let e = gen.next_event();
            let out = h.access_on(0, &e, i, &gen);
            if out.level == LevelHit::LlcVictim {
                victim_hits += 1;
            }
        }
        assert_eq!(
            victim_hits,
            h.uncore().llc().stats().victim_hits,
            "hierarchy and LLC disagree on victim hits"
        );
    }
}
