//! Batched trace decoding for the simulation hot loop.

use bv_trace::synth::TraceGenerator;
use bv_trace::TraceEvent;

/// Events decoded per refill. Small enough that the ring lives in L1,
/// large enough to amortize the decode dispatch.
pub const BATCH_EVENTS: usize = 64;

/// A small ring of pre-decoded trace events.
///
/// `TraceGenerator::next_event` interleaves RNG draws, kernel address
/// walks, and branchy event dispatch with the cache access that consumes
/// each event, so the decode logic is re-fetched cold on every iteration
/// of the drive loop. The batch instead decodes [`BATCH_EVENTS`] events
/// back-to-back (a tight loop over one code region) and then serves them
/// from a ring.
///
/// Decoding ahead is only legal because the generator splits decoding
/// from side effects: [`TraceGenerator::decode_event`] advances the RNG
/// and kernel walks (unobservable through `line_data`), while the
/// per-line write-epoch bump is deferred to [`TraceGenerator::commit`],
/// which [`EventBatch::next`] invokes as each event is popped. The
/// simulated hierarchy therefore observes exactly the event stream and
/// data views of the unbatched loop — bit-identical results, verified by
/// the golden snapshots and `batched_stream_matches_unbatched` below.
///
/// # Examples
///
/// ```
/// use bv_sim::EventBatch;
/// # use bv_trace::synth::{KernelSpec, WorkloadSpec};
/// # use bv_trace::{DataProfile, KernelKind};
/// # let spec = WorkloadSpec {
/// #     kernels: vec![KernelSpec {
/// #         kind: KernelKind::Loop,
/// #         region_bytes: 1 << 20,
/// #         weight: 1,
/// #         store_fraction: 64,
/// #         profile: DataProfile::SmallInt,
/// #     }],
/// #     mem_fraction: 85,
/// #     ifetch_fraction: 10,
/// #     code_bytes: 16 << 10,
/// #     seed: 7,
/// # };
/// let mut unbatched = spec.generator();
/// let mut gen = spec.generator();
/// let mut batch = EventBatch::new();
/// for _ in 0..1000 {
///     assert_eq!(batch.next(&mut gen), unbatched.next_event());
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventBatch {
    buf: Vec<TraceEvent>,
    next: usize,
}

impl EventBatch {
    /// Creates an empty batch; the first [`next`](EventBatch::next) call
    /// triggers a refill.
    #[must_use]
    pub fn new() -> EventBatch {
        EventBatch {
            buf: Vec::with_capacity(BATCH_EVENTS),
            next: 0,
        }
    }

    /// Pops the next event, refilling the ring from `gen` when empty.
    ///
    /// The popped event's memory side effect is committed before it is
    /// returned, so the caller may immediately query `gen.line_data`.
    #[inline]
    pub fn next(&mut self, gen: &mut TraceGenerator) -> TraceEvent {
        if self.next == self.buf.len() {
            self.refill(gen);
        }
        let ev = self.buf[self.next];
        self.next += 1;
        gen.commit(&ev);
        ev
    }

    #[cold]
    fn refill(&mut self, gen: &mut TraceGenerator) {
        self.buf.clear();
        self.next = 0;
        for _ in 0..BATCH_EVENTS {
            self.buf.push(gen.decode_event());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_trace::synth::{KernelSpec, WorkloadSpec};
    use bv_trace::{DataProfile, KernelKind};

    #[test]
    fn batched_stream_matches_unbatched() {
        let spec = WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::PointerChase,
                region_bytes: 2 << 20,
                weight: 1,
                store_fraction: 80,
                profile: DataProfile::PointerLike,
            }],
            mem_fraction: 96,
            ifetch_fraction: 12,
            code_bytes: 32 << 10,
            seed: 31337,
        };
        let mut unbatched = spec.generator();
        let mut gen = spec.generator();
        let mut batch = EventBatch::new();
        for i in 0..10_000 {
            let ev = batch.next(&mut gen);
            let want = unbatched.next_event();
            assert_eq!(ev, want, "event {i}");
            assert_eq!(
                gen.line_data(ev.addr),
                unbatched.line_data(want.addr),
                "data view diverged at event {i}"
            );
        }
    }
}
