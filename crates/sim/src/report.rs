//! Reporting helpers shared by the experiment harness.

/// Geometric mean of a sequence of positive ratios, the paper's average
/// for normalized IPC and miss-rate ratios (Section V).
///
/// Returns 1.0 for an empty input. Zero, negative, and NaN samples —
/// for which a geometric mean is undefined — are skipped, so one
/// degenerate ratio drops out of the average instead of poisoning the
/// whole report with `-inf` or NaN through `ln()`.
///
/// # Examples
///
/// ```
/// use bv_sim::report::geomean;
///
/// let g = geomean([2.0, 0.5]);
/// assert!((g - 1.0).abs() < 1e-12);
/// // Undefined samples are skipped, not propagated.
/// assert!((geomean([4.0, 0.0, -2.0, 1.0]) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        if v.is_nan() || v <= 0.0 {
            continue;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean; 0.0 for an empty input.
#[must_use]
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Renders a two-column TSV block (label, value) for experiment output
/// files.
#[must_use]
pub fn tsv_block<'a, I>(header: &str, rows: I) -> String
where
    I: IntoIterator<Item = (&'a str, f64)>,
{
    let mut out = format!("# {header}\n");
    for (label, value) in rows {
        out.push_str(&format!("{label}\t{value:.6}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        let paper_like = geomean([1.073; 60]);
        assert!((paper_like - 1.073).abs() < 1e-9);
    }

    #[test]
    fn geomean_skips_undefined_samples() {
        // ln(0) = -inf and ln(-2) = NaN would poison the sum; undefined
        // samples must drop out instead.
        assert!((geomean([4.0, 0.0, -2.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([f64::NAN, 9.0]) - 9.0).abs() < 1e-12);
        // All-undefined degrades to the empty-input identity.
        assert_eq!(geomean([0.0, -1.0]), 1.0);
        assert!(geomean([4.0, f64::INFINITY]).is_infinite());
    }

    #[test]
    fn mean_basics() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn tsv_block_formats() {
        let s = tsv_block("fig8", [("trace.a", 1.05), ("trace.b", 0.99)]);
        assert!(s.starts_with("# fig8\n"));
        assert!(s.contains("trace.a\t1.050000\n"));
    }
}
