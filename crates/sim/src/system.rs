//! Single-core simulation driver.

use crate::config::SimConfig;
use crate::core_model::CoreModel;
use crate::dram::DramStats;
use crate::hierarchy::{Hierarchy, LevelHit};
use crate::telemetry::{Instrument, NoInstrument, SimTelemetry};
use bv_compress::CompressionStats;
use bv_core::LlcStats;
use bv_trace::synth::WorkloadSpec;

/// The measurements of one single-core run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Organization simulated (e.g. `"base-victim"`).
    pub llc_name: &'static str,
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// LLC statistics at the end of the run.
    pub llc: LlcStats,
    /// Compressed-size distribution observed at the LLC.
    pub compression: CompressionStats,
    /// DRAM statistics at the end of the run.
    pub dram: DramStats,
    /// Demand accesses that reached each level (L1, L2, LLC-base,
    /// LLC-victim, memory).
    pub level_hits: [u64; 5],
}

impl RunResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// DRAM reads per kilo-instruction (the paper's "DRAM Read" metric is
    /// reported as a ratio of this between configurations).
    #[must_use]
    pub fn dram_reads_per_kilo_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram.reads as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Ratio helpers against a baseline run of the same trace.
    #[must_use]
    pub fn ipc_ratio(&self, baseline: &RunResult) -> f64 {
        self.ipc() / baseline.ipc()
    }

    /// DRAM read ratio against a baseline run of the same trace.
    #[must_use]
    pub fn dram_read_ratio(&self, baseline: &RunResult) -> f64 {
        if baseline.dram.reads == 0 {
            1.0
        } else {
            self.dram.reads as f64 / baseline.dram.reads as f64
        }
    }
}

/// A single-core simulated system.
///
/// # Examples
///
/// ```
/// use bv_sim::{LlcKind, SimConfig, System};
/// use bv_trace::synth::{KernelSpec, WorkloadSpec};
/// use bv_trace::{DataProfile, KernelKind};
///
/// let workload = WorkloadSpec {
///     kernels: vec![KernelSpec {
///         kind: KernelKind::Loop,
///         region_bytes: 256 << 10,
///         weight: 1,
///         store_fraction: 32,
///         profile: DataProfile::SmallInt,
///     }],
///     mem_fraction: 85,
///     ifetch_fraction: 8,
///     code_bytes: 16 << 10,
///     seed: 1,
/// };
/// let result = System::new(SimConfig::single_thread(LlcKind::Uncompressed))
///     .run(&workload, 100_000);
/// assert!(result.ipc() > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct System {
    cfg: SimConfig,
}

impl System {
    /// Creates a system with the given configuration.
    #[must_use]
    pub fn new(cfg: SimConfig) -> System {
        System { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `instructions` instructions of `workload` and reports the
    /// measurements (no warmup exclusion).
    #[must_use]
    pub fn run(&self, workload: &WorkloadSpec, instructions: u64) -> RunResult {
        self.run_with_warmup(workload, 0, instructions)
    }

    /// Runs `warmup` instructions to populate the caches, then measures
    /// the next `instructions` instructions. All reported counters and
    /// the IPC cover only the measured phase, as in the paper's
    /// trace-phase methodology.
    #[must_use]
    pub fn run_with_warmup(
        &self,
        workload: &WorkloadSpec,
        warmup: u64,
        instructions: u64,
    ) -> RunResult {
        self.run_instrumented(workload, warmup, instructions, &mut NoInstrument)
    }

    /// Like [`run_with_warmup`](System::run_with_warmup), but samples
    /// `telemetry` at every epoch boundary of the measured phase
    /// (`bvsim run --telemetry`). The simulation itself is unperturbed:
    /// the result is identical to the unsampled run.
    #[must_use]
    pub fn run_sampled(
        &self,
        workload: &WorkloadSpec,
        warmup: u64,
        instructions: u64,
        telemetry: &mut SimTelemetry,
    ) -> RunResult {
        self.run_instrumented(workload, warmup, instructions, telemetry)
    }

    /// Like [`run_with_warmup`](System::run_with_warmup), but drives a
    /// caller-built LLC (typically `LlcKind::build_traced` with a
    /// `RingSink`) and hands it back after the run so the retained
    /// events can be drained. The drive loop is the same code as the
    /// untraced path: with a traced organization the *simulation* is
    /// still bit-identical, only the sink observes it.
    #[must_use]
    pub fn run_traced(
        &self,
        workload: &WorkloadSpec,
        warmup: u64,
        instructions: u64,
        llc: Box<dyn bv_core::LlcOrganization>,
    ) -> (RunResult, Box<dyn bv_core::LlcOrganization>) {
        let hierarchy = Hierarchy::with_llc(self.cfg, 1, llc);
        let (result, hierarchy) =
            self.drive(hierarchy, workload, warmup, instructions, &mut NoInstrument);
        (result, hierarchy.into_llc())
    }

    /// The generic driver under both entry points: runs the warmup
    /// phase, then the measured phase with `instr` observing epoch
    /// boundaries. With [`NoInstrument`] the observer monomorphizes to
    /// one dead `u64` compare per event.
    #[must_use]
    pub fn run_instrumented<I: Instrument>(
        &self,
        workload: &WorkloadSpec,
        warmup: u64,
        instructions: u64,
        instr: &mut I,
    ) -> RunResult {
        let hierarchy = Hierarchy::new(self.cfg, 1);
        self.drive(hierarchy, workload, warmup, instructions, instr)
            .0
    }

    /// Runs warmup + measured phases on `hierarchy` and returns it with
    /// the result, so traced callers can recover the LLC afterwards.
    fn drive<I: Instrument>(
        &self,
        mut hierarchy: Hierarchy,
        workload: &WorkloadSpec,
        warmup: u64,
        instructions: u64,
        instr: &mut I,
    ) -> (RunResult, Hierarchy) {
        let mut core = CoreModel::new(self.cfg.core);
        let mut gen = workload.generator();
        let mut level_hits = [0u64; 5];
        // Events are decoded in batches and committed as consumed, which
        // is bit-identical to calling `next_event` per iteration (see
        // `EventBatch`). One ring spans both phases.
        let mut batch = crate::batch::EventBatch::new();

        while core.instructions() < warmup {
            let ev = batch.next(&mut gen);
            core.work(ev.instructions());
            let out = hierarchy.access_on(0, &ev, core.cycles(), &gen);
            core.account(&ev, &out);
        }
        let warm_insts = core.instructions();
        let warm_cycles = core.cycles();
        let llc_snap = *hierarchy.uncore().llc().stats();
        let comp_snap = hierarchy.uncore().llc().compression_stats().clone();
        let dram_snap = *hierarchy.uncore().dram().stats();
        instr.begin(core.instructions(), core.cycles(), &hierarchy);
        // Cached locally so the hot loop compares against a register
        // instead of re-reading the observer through `&mut` every event.
        let mut boundary = instr.next_boundary();

        while core.instructions() < warm_insts + instructions {
            let ev = batch.next(&mut gen);
            core.work(ev.instructions());
            let out = hierarchy.access_on(0, &ev, core.cycles(), &gen);
            core.account(&ev, &out);
            let idx = match out.level {
                LevelHit::L1 => 0,
                LevelHit::L2 => 1,
                LevelHit::LlcBase => 2,
                LevelHit::LlcVictim => 3,
                LevelHit::Memory => 4,
            };
            level_hits[idx] += 1;
            if I::ENABLED && core.instructions() >= boundary {
                instr.sample(core.instructions(), core.cycles(), &hierarchy);
                boundary = instr.next_boundary();
            }
        }
        instr.finish(core.instructions(), core.cycles(), &hierarchy);

        let result = RunResult {
            llc_name: hierarchy.uncore().llc().name(),
            instructions: core.instructions() - warm_insts,
            cycles: core.cycles() - warm_cycles,
            llc: hierarchy.uncore().llc().stats().since(&llc_snap),
            compression: hierarchy
                .uncore()
                .llc()
                .compression_stats()
                .since(&comp_snap),
            dram: hierarchy.uncore().dram().stats().since(&dram_snap),
            level_hits,
        };
        (result, hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LlcKind;
    use bv_trace::synth::KernelSpec;
    use bv_trace::{DataProfile, KernelKind};

    fn workload(region: u64, profile: DataProfile) -> WorkloadSpec {
        WorkloadSpec {
            kernels: vec![KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 200,
                },
                region_bytes: region,
                weight: 1,
                store_fraction: 48,
                profile,
            }],
            mem_fraction: 96,
            ifetch_fraction: 8,
            code_bytes: 16 << 10,
            seed: 99,
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let w = workload(1 << 20, DataProfile::SmallInt);
        let sys = System::new(SimConfig::single_thread(LlcKind::BaseVictim));
        let a = sys.run(&w, 200_000);
        let b = sys.run(&w, 200_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.llc, b.llc);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn base_victim_never_reads_more_than_uncompressed() {
        // The architectural guarantee, end to end through the full
        // hierarchy with prefetching.
        let w = workload(4 << 20, DataProfile::SmallInt);
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run(&w, 400_000);
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run(&w, 400_000);
        assert!(
            bv.dram.reads <= base.dram.reads,
            "base-victim reads {} > uncompressed {}",
            bv.dram.reads,
            base.dram.reads
        );
        assert!(bv.llc.read_hits() >= base.llc.read_hits());
    }

    #[test]
    fn compressible_working_sets_gain_ipc() {
        // A working set ~2x the LLC with highly compressible data: the
        // victim cache should convert misses into hits and improve IPC.
        let w = workload(4 << 20, DataProfile::PointerLike);
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run(&w, 600_000);
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run(&w, 600_000);
        assert!(
            bv.ipc_ratio(&base) > 1.0,
            "expected speedup, got {:.4}",
            bv.ipc_ratio(&base)
        );
        assert!(bv.llc.victim_hits > 0);
    }

    #[test]
    fn level_hit_counts_sum_to_demand_accesses() {
        let w = workload(1 << 20, DataProfile::SmallInt);
        let r = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run(&w, 100_000);
        let total: u64 = r.level_hits.iter().sum();
        assert!(total > 0);
        // Every demand access lands in exactly one level bucket.
        assert_eq!(
            r.level_hits[2] + r.level_hits[3],
            r.llc.base_hits + r.llc.victim_hits
        );
        assert_eq!(r.level_hits[4], r.llc.read_misses);
    }

    #[test]
    fn small_working_sets_rarely_touch_memory() {
        let w = workload(64 << 10, DataProfile::SmallInt);
        let r = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run(&w, 300_000);
        let mem_frac = r.level_hits[4] as f64 / r.level_hits.iter().sum::<u64>() as f64;
        assert!(mem_frac < 0.02, "memory fraction {mem_frac:.3} too high");
    }
}
