//! The interval (window-based) core timing model.
//!
//! Substitutes for the paper's cycle-accurate out-of-order core (see
//! DESIGN.md). Three rules, applied per trace event:
//!
//! 1. **Compute**: instructions retire at the pipeline width (4/cycle).
//! 2. **Cache hits**: L1 hits are fully pipelined; L2/LLC hits expose a
//!    quarter of their beyond-L1 latency (the out-of-order window hides
//!    the rest). This preserves the paper's small decompression/tag-lookup
//!    penalties without exaggerating them.
//! 3. **Memory misses**: an LLC miss stalls the core for its full DRAM
//!    latency divided by the achievable memory-level parallelism — the
//!    number of other misses inside the reorder-buffer window — except
//!    that *dependent* (pointer-chase) misses serialize completely. DRAM
//!    bank/bus queueing is modeled separately in [`crate::Dram`], so
//!    bandwidth saturation lengthens the latencies this model divides.

use crate::config::CoreConfig;
use crate::hierarchy::{AccessOutcome, LevelHit};
use bv_trace::{AccessKind, TraceEvent};
use std::collections::VecDeque;

/// Maximum overlapped misses (MSHR-limited MLP).
const MAX_MLP: usize = 8;

/// Fraction of beyond-L1 hit latency exposed to the pipeline, as a
/// divisor (4 = 25%).
const HIT_EXPOSURE_DIV: u64 = 4;

/// The per-core timing state.
///
/// # Examples
///
/// ```
/// use bv_sim::{CoreConfig, CoreModel};
///
/// let mut core = CoreModel::new(CoreConfig::default());
/// core.work(8); // eight instructions on a 4-wide machine
/// assert_eq!(core.cycles(), 2);
/// assert_eq!(core.instructions(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    /// Cycle count scaled by the pipeline width (so compute work of one
    /// instruction adds one unit).
    scaled_cycles: u64,
    instructions: u64,
    /// Instruction indices of recent LLC misses, for the MLP estimate.
    miss_window: VecDeque<u64>,
}

impl CoreModel {
    /// Creates an idle core.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> CoreModel {
        CoreModel {
            cfg,
            scaled_cycles: 0,
            instructions: 0,
            miss_window: VecDeque::new(),
        }
    }

    /// Elapsed core cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.scaled_cycles / u64::from(self.cfg.width)
    }

    /// Retired instructions.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles() as f64
        }
    }

    /// Retires `insts` instructions of compute work.
    pub fn work(&mut self, insts: u64) {
        self.instructions += insts;
        self.scaled_cycles += insts;
    }

    fn add_stall(&mut self, cycles: u64) {
        self.scaled_cycles += cycles * u64::from(self.cfg.width);
    }

    /// Accounts the timing impact of one memory access.
    pub fn account(&mut self, ev: &TraceEvent, outcome: &AccessOutcome) {
        // Stores retire through the store buffer without stalling.
        if ev.kind == AccessKind::Store {
            return;
        }
        match outcome.level {
            LevelHit::L1 => {}
            LevelHit::L2 | LevelHit::LlcBase | LevelHit::LlcVictim => {
                let beyond_l1 = outcome
                    .latency
                    .saturating_sub(u64::from(self.cfg.l1_latency));
                self.add_stall(beyond_l1 / HIT_EXPOSURE_DIV);
            }
            LevelHit::Memory => {
                let inst = self.instructions;
                let rob = u64::from(self.cfg.rob_size);
                while let Some(&front) = self.miss_window.front() {
                    if front + rob < inst {
                        self.miss_window.pop_front();
                    } else {
                        break;
                    }
                }
                let mlp = if ev.dependent {
                    1
                } else {
                    (self.miss_window.len() + 1).min(MAX_MLP) as u64
                };
                self.add_stall(outcome.latency / mlp);
                self.miss_window.push_back(inst);
                if self.miss_window.len() > MAX_MLP {
                    self.miss_window.pop_front();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(dependent: bool) -> TraceEvent {
        TraceEvent {
            gap: 0,
            pc: 0,
            addr: 0,
            kind: AccessKind::Load,
            dependent,
        }
    }

    fn outcome(level: LevelHit, latency: u64) -> AccessOutcome {
        AccessOutcome { level, latency }
    }

    #[test]
    fn compute_retires_at_width() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(400);
        assert_eq!(c.cycles(), 100);
        assert!((c.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn l1_hits_are_free() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(4);
        c.account(&load(false), &outcome(LevelHit::L1, 3));
        assert_eq!(c.cycles(), 1);
    }

    #[test]
    fn llc_hits_expose_a_quarter() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(4);
        // 27-cycle LLC hit: (27 - 3) / 4 = 6 cycles exposed.
        c.account(&load(false), &outcome(LevelHit::LlcBase, 27));
        assert_eq!(c.cycles(), 1 + 6);
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(4);
        c.account(&load(true), &outcome(LevelHit::Memory, 200));
        c.work(4);
        c.account(&load(true), &outcome(LevelHit::Memory, 200));
        assert_eq!(c.cycles(), 2 + 400, "no overlap for dependent misses");
    }

    #[test]
    fn independent_misses_overlap() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(4);
        c.account(&load(false), &outcome(LevelHit::Memory, 200));
        c.work(4);
        c.account(&load(false), &outcome(LevelHit::Memory, 200));
        // Second miss sees MLP 2: stalls 100, not 200.
        assert_eq!(c.cycles(), 2 + 200 + 100);
    }

    #[test]
    fn distant_misses_do_not_overlap() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.account(&load(false), &outcome(LevelHit::Memory, 200));
        c.work(1000); // past the 224-entry ROB window
        c.account(&load(false), &outcome(LevelHit::Memory, 200));
        assert_eq!(c.cycles(), 250 + 200 + 200);
    }

    #[test]
    fn stores_never_stall() {
        let mut c = CoreModel::new(CoreConfig::default());
        c.work(4);
        let mut store = load(false);
        store.kind = AccessKind::Store;
        c.account(&store, &outcome(LevelHit::Memory, 500));
        assert_eq!(c.cycles(), 1);
    }

    #[test]
    fn mlp_is_capped() {
        let mut c = CoreModel::new(CoreConfig::default());
        for _ in 0..20 {
            c.work(1);
            c.account(&load(false), &outcome(LevelHit::Memory, 800));
        }
        // Every stall divides by at most MAX_MLP.
        let min_possible = 20 * 800 / 8;
        assert!(c.cycles() >= min_possible as u64);
    }
}
