//! System-level property tests: inclusion, level accounting, and the
//! hit-rate guarantee under randomized workload parameters.

use bv_sim::{LlcKind, SimConfig, System};
use bv_testkit::{cases, Rng};
use bv_trace::synth::{KernelSpec, WorkloadSpec};
use bv_trace::{DataProfile, KernelKind};

fn arb_workload(rng: &mut Rng) -> WorkloadSpec {
    let kind = match rng.below(5) {
        0 => KernelKind::Streaming,
        1 => KernelKind::Strided { stride: 256 },
        2 => KernelKind::Loop,
        3 => KernelKind::PointerChase,
        _ => KernelKind::HotCold {
            hot_fraction: 32,
            hot_probability: 200,
        },
    };
    WorkloadSpec {
        kernels: vec![KernelSpec {
            kind,
            region_bytes: rng.range_u64(1, 16) * 128 * 1024,
            weight: 1,
            store_fraction: rng.below(128) as u8,
            profile: *rng.choose(&DataProfile::ALL),
        }],
        mem_fraction: rng.range_u64(32, 128) as u8,
        ifetch_fraction: 8,
        code_bytes: 16 << 10,
        seed: rng.next_u64(),
    }
}

/// The hit-rate guarantee holds for arbitrary single-kernel workloads,
/// end to end.
#[test]
fn guarantee_holds_for_arbitrary_workloads() {
    cases(12, |rng| {
        let w = arb_workload(rng);
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed))
            .run_with_warmup(&w, 60_000, 60_000);
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim))
            .run_with_warmup(&w, 60_000, 60_000);
        assert!(
            bv.llc.read_misses <= base.llc.read_misses,
            "misses {} > {}",
            bv.llc.read_misses,
            base.llc.read_misses
        );
        assert!(
            bv.dram.reads <= base.dram.reads,
            "reads {} > {}",
            bv.dram.reads,
            base.dram.reads
        );
    });
}

/// Level accounting is exact for every organization: the level buckets
/// reconcile with the LLC's own counters.
#[test]
fn level_accounting_reconciles() {
    cases(12, |rng| {
        let w = arb_workload(rng);
        let kind = *rng.choose(&[
            LlcKind::Uncompressed,
            LlcKind::TwoTag,
            LlcKind::TwoTagEcm,
            LlcKind::BaseVictim,
            LlcKind::BaseVictimNonInclusive,
        ]);
        let r = System::new(SimConfig::single_thread(kind)).run(&w, 80_000);
        assert_eq!(
            r.level_hits[2] + r.level_hits[3],
            r.llc.base_hits + r.llc.victim_hits
        );
        assert_eq!(r.level_hits[4], r.llc.read_misses);
        // Every memory-level access produced exactly one demand fill.
        assert_eq!(r.llc.demand_fills, r.llc.read_misses);
    });
}

/// Writeback conservation: everything the LLC writes to memory was
/// counted, and DRAM write traffic equals the LLC's account.
#[test]
fn dram_writes_match_llc_accounting() {
    cases(12, |rng| {
        let w = arb_workload(rng);
        let r = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run(&w, 80_000);
        assert_eq!(r.dram.writes, r.llc.memory_writes);
    });
}

/// Inclusion is maintained continuously on a mixed workload (checked
/// densely inside the hierarchy).
#[test]
fn inclusion_is_continuous() {
    use bv_sim::Hierarchy;
    let w = WorkloadSpec {
        kernels: vec![
            KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 180,
                },
                region_bytes: 1 << 20,
                weight: 3,
                store_fraction: 64,
                profile: DataProfile::SmallInt,
            },
            KernelSpec {
                kind: KernelKind::Streaming,
                region_bytes: 4 << 20,
                weight: 1,
                store_fraction: 16,
                profile: DataProfile::FloatLike,
            },
        ],
        mem_fraction: 96,
        ifetch_fraction: 12,
        code_bytes: 32 << 10,
        seed: 77,
    };
    for kind in [LlcKind::Uncompressed, LlcKind::TwoTag, LlcKind::BaseVictim] {
        let cfg = SimConfig::single_thread(kind);
        let mut h = Hierarchy::new(cfg, 1);
        let mut gen = w.generator();
        for i in 0..60_000u64 {
            let ev = gen.next_event();
            h.access_on(0, &ev, i, &gen);
            if i % 10_000 == 0 {
                h.assert_inclusion();
            }
        }
        h.assert_inclusion();
    }
}
