//! Terminal rendering for `bvsim report`: per-column sparklines, the
//! per-epoch TSV table, histogram bars, and the counter list.

use crate::hist::Log2Histogram;
use crate::series::ColumnData;
use crate::sink::{TelemetryReport, SCHEMA};

const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maximum sparkline width; longer series are mean-downsampled.
const SPARK_WIDTH: usize = 64;

/// Renders `values` as a fixed-height sparkline, at most `width` chars.
///
/// Values are scaled to the series' own min..max; a constant series
/// renders at the lowest level. Series longer than `width` are reduced
/// by averaging consecutive chunks so phase shape is preserved.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let condensed = condense(values, width);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &condensed {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    condensed
        .iter()
        .map(|&v| {
            let level = if span > 0.0 {
                (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// Mean-downsamples `values` into at most `width` points.
fn condense(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let start = i * values.len() / width;
            let end = ((i + 1) * values.len() / width).max(start + 1);
            let chunk = &values[start..end];
            chunk.iter().sum::<f64>() / chunk.len() as f64
        })
        .collect()
}

fn column_values(data: &ColumnData) -> Vec<f64> {
    match data {
        ColumnData::U64(v) => v.iter().map(|&x| x as f64).collect(),
        ColumnData::F64(v) => v.clone(),
    }
}

/// Renders the full human-readable report: header, sparkline overview,
/// per-epoch TSV, histograms, and counters.
#[must_use]
pub fn render(report: &TelemetryReport) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{SCHEMA} · epoch = {} insts · {} epochs",
        report.epoch_insts,
        report.series.rows()
    );
    for (k, v) in &report.meta {
        let _ = writeln!(out, "  {k} = {v}");
    }

    let name_width = report
        .series
        .columns()
        .iter()
        .map(|c| c.name().len())
        .max()
        .unwrap_or(0);
    out.push('\n');
    for col in report.series.columns() {
        let values = column_values(col.data());
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if values.is_empty() {
            lo = 0.0;
            hi = 0.0;
        }
        let _ = writeln!(
            out,
            "  {:name_width$}  {}  min {lo:.4}  max {hi:.4}",
            col.name(),
            sparkline(&values, SPARK_WIDTH),
        );
    }

    out.push('\n');
    out.push_str("epoch");
    for col in report.series.columns() {
        let _ = write!(out, "\t{}", col.name());
    }
    out.push('\n');
    for row in 0..report.series.rows() {
        let _ = write!(out, "{row}");
        for col in report.series.columns() {
            match col.data() {
                ColumnData::U64(v) => {
                    let _ = write!(out, "\t{}", v[row]);
                }
                ColumnData::F64(v) => {
                    let _ = write!(out, "\t{:.4}", v[row]);
                }
            }
        }
        out.push('\n');
    }

    for (name, hist) in &report.histograms {
        out.push('\n');
        let _ = writeln!(out, "histogram {name} ({} samples)", hist.count());
        out.push_str(&render_histogram(hist));
    }

    if !report.counters.is_empty() {
        out.push('\n');
        out.push_str("counters:\n");
        let width = report
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &report.counters {
            let _ = writeln!(out, "  {name:width$}  {value}");
        }
    }

    out
}

fn render_histogram(hist: &Log2Histogram) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let Some(max_bucket) = hist.max_bucket() else {
        out.push_str("  (empty)\n");
        return out;
    };
    let peak = hist.buckets().iter().copied().max().unwrap_or(1).max(1);
    let labels: Vec<String> = (0..=max_bucket)
        .map(|b| {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            format!("[{lo},{hi})")
        })
        .collect();
    let label_width = labels.iter().map(String::len).max().unwrap_or(0);
    for (b, label) in labels.iter().enumerate() {
        let count = hist.buckets()[b];
        let bar_len = ((count as f64 / peak as f64) * 30.0).round() as usize;
        let _ = writeln!(
            out,
            "  {label:label_width$}  {count:>8}  {}",
            "#".repeat(bar_len)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    #[test]
    fn sparkline_spans_levels() {
        let ramp: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let s = sparkline(&ramp, 64);
        assert_eq!(s.chars().count(), 8);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn constant_series_renders_flat() {
        let s = sparkline(&[2.0; 5], 64);
        assert_eq!(s, "▁▁▁▁▁");
    }

    #[test]
    fn long_series_is_condensed() {
        let long: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long, 64).chars().count(), 64);
        assert!(sparkline(&[], 64).is_empty());
    }

    #[test]
    fn render_includes_all_sections() {
        let mut series = TimeSeries::new();
        let insts = series.u64_column("insts");
        let ipc = series.f64_column("ipc");
        series.push_u64(insts, 100_000);
        series.push_f64(ipc, 1.25);
        series.end_row();
        let mut hist = Log2Histogram::new();
        hist.record(9);
        let report = TelemetryReport {
            epoch_insts: 100_000,
            meta: [("llc".to_string(), "dcc".to_string())].into(),
            series,
            histograms: vec![("bursts".to_string(), hist)],
            counters: vec![("llc.read_misses".to_string(), 42)],
        };
        let text = render(&report);
        assert!(text.contains(SCHEMA));
        assert!(text.contains("llc = dcc"));
        assert!(text.contains("epoch\tinsts\tipc"));
        assert!(text.contains("1.2500"));
        assert!(text.contains("histogram bursts"));
        assert!(text.contains("[8,16)"));
        assert!(text.contains("llc.read_misses"));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        assert!(render_histogram(&Log2Histogram::new()).contains("(empty)"));
    }
}
