//! # bv-telemetry — deterministic epoch-sampled observability
//!
//! The paper's argument is dynamic: Base-Victim wins because victim
//! occupancy and compressibility fluctuate per program phase, and the
//! naive two-tag designs lose because replacement-state pollution
//! accumulates over time. End-of-run aggregates can't show any of that,
//! so this crate provides the data structures a simulator needs to
//! record *time-varying* behavior without giving up determinism or hot
//! path speed:
//!
//! * [`TimeSeries`] — compact columnar per-epoch samples (one epoch =
//!   [`DEFAULT_EPOCH_INSTS`] committed instructions unless overridden);
//! * [`Log2Histogram`] — 65-bucket power-of-two histograms for bursty
//!   per-epoch quantities;
//! * [`CounterRegistry`] — named monotonic counters, O(1) on the bump
//!   path;
//! * [`TelemetryReport`] + [`render()`] — the `bvsim-telemetry-v1` JSONL
//!   sink and the terminal renderer behind `bvsim report`;
//! * [`json`] — the registry-free JSON reader/writer everything round
//!   trips through (also re-exported as `bv_runner::json` for the run
//!   journal);
//! * [`events_io`] — the `bvsim-events-v1` JSONL reader/writer and
//!   [`StreamSink`] for `bv-events` captures (`bvsim trace`).
//!
//! Everything here is sampled on *committed instructions*, never wall
//! clock, so an instrumented run is bit-reproducible: the same trace and
//! config produce the same JSONL bytes on any machine.
//!
//! The crate is simulator-agnostic and depends only on `bv-events` (for
//! the event record the JSONL schema serializes); `bv-sim` owns the
//! actual instrumentation hooks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod events_io;
mod hist;
pub mod json;
pub mod render;
mod series;
mod sink;

pub use counters::{CounterId, CounterRegistry};
pub use events_io::{read_events, write_events, EventsHeader, StreamSink, EVENTS_SCHEMA};
pub use hist::{Log2Histogram, LOG2_BUCKETS};
pub use render::{render, sparkline};
pub use series::{Column, ColumnData, ColumnId, TimeSeries};
pub use sink::{TelemetryReport, SCHEMA};

/// Default sampling period: one epoch per 100k committed instructions.
pub const DEFAULT_EPOCH_INSTS: u64 = 100_000;
