//! Compact columnar time series.
//!
//! A [`TimeSeries`] is a set of named columns sampled together once per
//! epoch. Storage is columnar (`Vec<u64>` / `Vec<f64>` per column) so a
//! long run costs 8 bytes per column per epoch with no per-row
//! allocation, and the sink can stream whole columns without
//! restructuring.
//!
//! Rows are built incrementally: push one value per column, then seal
//! the row with [`TimeSeries::end_row`], which asserts every column was
//! written exactly once. That catches instrumentation drift (a new
//! column added to `begin` but forgotten in `sample`) at the first
//! sampled epoch instead of producing silently misaligned output.

/// Handle to a column, returned at registration time.
///
/// Indexing through a `ColumnId` is O(1) and avoids name lookups on the
/// sampling path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnId(usize);

/// The values of one column.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// Monotonic or delta counters; round trip losslessly through JSON.
    U64(Vec<u64>),
    /// Rates and ratios; rendered with shortest-roundtrip formatting.
    F64(Vec<f64>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::U64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
        }
    }
}

/// One named column of a [`TimeSeries`].
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// The column name, as registered.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column values.
    #[must_use]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }
}

/// A columnar table of per-epoch samples.
///
/// # Examples
///
/// ```
/// use bv_telemetry::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// let insts = ts.u64_column("insts");
/// let ipc = ts.f64_column("ipc");
/// for epoch in 0..3u64 {
///     ts.push_u64(insts, (epoch + 1) * 100_000);
///     ts.push_f64(ipc, 1.5);
///     ts.end_row();
/// }
/// assert_eq!(ts.rows(), 3);
/// assert_eq!(ts.u64s("insts"), Some(&[100_000, 200_000, 300_000][..]));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    columns: Vec<Column>,
    rows: usize,
}

impl TimeSeries {
    /// An empty series with no columns.
    #[must_use]
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Registers an unsigned-integer column. Must happen before the
    /// first row is pushed.
    pub fn u64_column(&mut self, name: &str) -> ColumnId {
        self.register(name, ColumnData::U64(Vec::new()))
    }

    /// Registers a floating-point column. Must happen before the first
    /// row is pushed.
    pub fn f64_column(&mut self, name: &str) -> ColumnId {
        self.register(name, ColumnData::F64(Vec::new()))
    }

    fn register(&mut self, name: &str, data: ColumnData) -> ColumnId {
        assert_eq!(self.rows, 0, "columns must be registered before rows");
        assert!(
            self.columns.iter().all(|c| c.name != name),
            "duplicate column '{name}'"
        );
        self.columns.push(Column {
            name: name.to_string(),
            data,
        });
        ColumnId(self.columns.len() - 1)
    }

    /// Appends a value to a `u64` column for the row being built.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `u64` or was already written this row.
    pub fn push_u64(&mut self, id: ColumnId, val: u64) {
        let col = &mut self.columns[id.0];
        match &mut col.data {
            ColumnData::U64(v) => {
                assert_eq!(v.len(), self.rows, "column '{}' written twice", col.name);
                v.push(val);
            }
            ColumnData::F64(_) => panic!("column '{}' is f64, not u64", col.name),
        }
    }

    /// Appends a value to an `f64` column for the row being built.
    ///
    /// Non-finite values do not survive the JSON sink; callers guard
    /// divisions (empty epochs) before pushing.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `f64`, was already written this row,
    /// or `val` is not finite.
    pub fn push_f64(&mut self, id: ColumnId, val: f64) {
        let col = &mut self.columns[id.0];
        assert!(
            val.is_finite(),
            "non-finite sample in column '{}'",
            col.name
        );
        match &mut col.data {
            ColumnData::F64(v) => {
                assert_eq!(v.len(), self.rows, "column '{}' written twice", col.name);
                v.push(val);
            }
            ColumnData::U64(_) => panic!("column '{}' is u64, not f64", col.name),
        }
    }

    /// Seals the row being built.
    ///
    /// # Panics
    ///
    /// Panics if any registered column was not written since the last
    /// `end_row`.
    pub fn end_row(&mut self) {
        for col in &self.columns {
            assert_eq!(
                col.data.len(),
                self.rows + 1,
                "column '{}' missing from row {}",
                col.name,
                self.rows
            );
        }
        self.rows += 1;
    }

    /// Number of complete rows (epochs).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when no rows have been sealed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns in registration order.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks a column up by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The values of a `u64` column, by name.
    #[must_use]
    pub fn u64s(&self, name: &str) -> Option<&[u64]> {
        match &self.column(name)?.data {
            ColumnData::U64(v) => Some(v),
            ColumnData::F64(_) => None,
        }
    }

    /// The values of an `f64` column, by name.
    #[must_use]
    pub fn f64s(&self, name: &str) -> Option<&[f64]> {
        match &self.column(name)?.data {
            ColumnData::F64(v) => Some(v),
            ColumnData::U64(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnar_rows_round() {
        let mut ts = TimeSeries::new();
        let a = ts.u64_column("a");
        let b = ts.f64_column("b");
        ts.push_u64(a, 7);
        ts.push_f64(b, 0.25);
        ts.end_row();
        assert_eq!(ts.rows(), 1);
        assert_eq!(ts.u64s("a"), Some(&[7][..]));
        assert_eq!(ts.f64s("b"), Some(&[0.25][..]));
        assert!(ts.u64s("b").is_none());
        assert!(ts.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "missing from row")]
    fn end_row_catches_missing_column() {
        let mut ts = TimeSeries::new();
        let a = ts.u64_column("a");
        ts.f64_column("b");
        ts.push_u64(a, 1);
        ts.end_row();
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_is_rejected() {
        let mut ts = TimeSeries::new();
        let a = ts.u64_column("a");
        ts.push_u64(a, 1);
        ts.push_u64(a, 2);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_samples_are_rejected() {
        let mut ts = TimeSeries::new();
        let b = ts.f64_column("b");
        ts.push_f64(b, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_are_rejected() {
        let mut ts = TimeSeries::new();
        ts.u64_column("a");
        ts.f64_column("a");
    }
}
