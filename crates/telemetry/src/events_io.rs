//! The `bvsim-events-v1` JSONL reader/writer and the streaming sink.
//!
//! One header line, then one line per [`CacheEvent`]:
//!
//! ```text
//! {"schema":"bvsim-events-v1","count":3,"dropped":0,"meta":{"trace":"..."}}
//! {"seq":0,"set":17,"way":3,"kind":"fill","tag":291,"size":4}
//! {"seq":1,"set":17,"kind":"miss"}
//! {"seq":2,"set":17,"way":1,"kind":"eviction","tag":88,"cause":"replacement"}
//! ```
//!
//! Set-wide events (demand misses, failed victim inserts) omit `"way"`.
//! A file captured through [`StreamSink`] omits `"count"` in the header —
//! the stream's length is not known up front — and [`read_events`] then
//! takes the event-line count as authoritative; files written from a
//! drained ring via [`write_events`] declare `count` so truncation is
//! detectable. All reader errors name the offending 1-based line.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::json::{self, ObjWriter, Value};
use bv_events::{CacheEvent, DropCause, EventKind, EventSink, EvictCause};

/// The schema identifier for event captures.
pub const EVENTS_SCHEMA: &str = "bvsim-events-v1";

/// The header of an event capture.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventsHeader {
    /// Events in the body (from the header's `count` when declared,
    /// otherwise the counted event lines).
    pub count: u64,
    /// Events the capturing ring overwrote before the capture was
    /// written (0 for streamed captures, which never drop).
    pub dropped: u64,
    /// Free-form run identity (trace name, LLC kind, ...).
    pub meta: BTreeMap<String, String>,
}

fn header_line(count: Option<u64>, dropped: u64, meta: &BTreeMap<String, String>) -> String {
    let mut m = ObjWriter::new();
    for (k, v) in meta {
        m.str(k, v);
    }
    let m = m.finish();
    let mut header = ObjWriter::new();
    header.str("schema", EVENTS_SCHEMA);
    if let Some(count) = count {
        header.u64("count", count);
    }
    header.u64("dropped", dropped).raw("meta", &m);
    header.finish()
}

/// Renders one event as its JSONL line (no trailing newline).
#[must_use]
pub fn event_line(ev: &CacheEvent) -> String {
    let mut o = ObjWriter::new();
    o.u64("seq", ev.seq).u64("set", u64::from(ev.set));
    if ev.way != CacheEvent::NO_WAY {
        o.u64("way", u64::from(ev.way));
    }
    o.str("kind", ev.kind.name());
    match ev.kind {
        EventKind::Fill { tag, size }
        | EventKind::PrefetchFill { tag, size }
        | EventKind::VictimHit { tag, size }
        | EventKind::VictimInsert { tag, size }
        | EventKind::VictimInsertFail { tag, size }
        | EventKind::Writeback { tag, size } => {
            o.u64("tag", tag).u64("size", u64::from(size));
        }
        EventKind::DemandHit { tag } => {
            o.u64("tag", tag);
        }
        EventKind::DemandMiss => {}
        EventKind::SilentDrop { tag, cause } => {
            o.u64("tag", tag).str("cause", cause.name());
        }
        EventKind::Eviction { tag, cause } => {
            o.u64("tag", tag).str("cause", cause.name());
        }
        EventKind::Compression { encoder, size } => {
            o.u64("encoder", u64::from(encoder))
                .u64("size", u64::from(size));
        }
    }
    o.finish()
}

/// Renders a drained capture as a complete `bvsim-events-v1` document
/// (trailing newline included). `dropped` is the capturing ring's
/// overwrite count, so a reader knows the capture's left edge is not the
/// start of the run.
#[must_use]
pub fn write_events(
    events: &[CacheEvent],
    dropped: u64,
    meta: &BTreeMap<String, String>,
) -> String {
    let mut out = header_line(Some(events.len() as u64), dropped, meta);
    out.push('\n');
    for ev in events {
        out.push_str(&event_line(ev));
        out.push('\n');
    }
    out
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn req_u8(v: &Value, key: &str) -> Result<u8, String> {
    u8::try_from(req_u64(v, key)?).map_err(|_| format!("'{key}' out of u8 range"))
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn parse_event(line: &str) -> Result<CacheEvent, String> {
    let v = json::parse(line)?;
    let seq = req_u64(&v, "seq")?;
    let set = u32::try_from(req_u64(&v, "set")?).map_err(|_| "'set' out of u32 range")?;
    let way = match v.get("way") {
        Some(w) => u8::try_from(w.as_u64().ok_or("non-integer 'way'")?)
            .map_err(|_| "'way' out of u8 range")?,
        None => CacheEvent::NO_WAY,
    };
    let kind = match req_str(&v, "kind")? {
        "fill" => EventKind::Fill {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "prefetch-fill" => EventKind::PrefetchFill {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "hit" => EventKind::DemandHit {
            tag: req_u64(&v, "tag")?,
        },
        "miss" => EventKind::DemandMiss,
        "victim-hit" => EventKind::VictimHit {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "victim-insert" => EventKind::VictimInsert {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "victim-insert-fail" => EventKind::VictimInsertFail {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "silent-drop" => EventKind::SilentDrop {
            tag: req_u64(&v, "tag")?,
            cause: DropCause::from_name(req_str(&v, "cause")?)
                .ok_or_else(|| format!("unknown drop cause '{}'", req_str(&v, "cause").unwrap()))?,
        },
        "writeback" => EventKind::Writeback {
            tag: req_u64(&v, "tag")?,
            size: req_u8(&v, "size")?,
        },
        "eviction" => EventKind::Eviction {
            tag: req_u64(&v, "tag")?,
            cause: EvictCause::from_name(req_str(&v, "cause")?).ok_or_else(|| {
                format!("unknown eviction cause '{}'", req_str(&v, "cause").unwrap())
            })?,
        },
        "compression" => EventKind::Compression {
            encoder: req_u8(&v, "encoder")?,
            size: req_u8(&v, "size")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(CacheEvent {
        seq,
        set,
        way,
        kind,
    })
}

/// Parses a `bvsim-events-v1` document.
///
/// # Errors
///
/// Returns `"line N: reason"` for the first structural problem: wrong or
/// missing schema tag, malformed JSON, an unknown event kind or cause, or
/// a body shorter than the header's declared `count`.
pub fn read_events(text: &str) -> Result<(EventsHeader, Vec<CacheEvent>), String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hn, first) = lines.next().ok_or("empty events file")?;
    let at = |n: usize, e: String| format!("line {}: {e}", n + 1);
    let header = json::parse(first).map_err(|e| at(hn, e))?;
    match header.get("schema").and_then(Value::as_str) {
        Some(s) if s == EVENTS_SCHEMA => {}
        Some(s) => {
            return Err(at(
                hn,
                format!("unsupported schema '{s}' (expected {EVENTS_SCHEMA})"),
            ))
        }
        None => return Err(at(hn, "missing schema tag in header".into())),
    }
    let declared = header.get("count").and_then(Value::as_u64);
    let dropped = header.get("dropped").and_then(Value::as_u64).unwrap_or(0);
    let mut meta = BTreeMap::new();
    if let Some(Value::Obj(m)) = header.get("meta") {
        for (k, v) in m {
            let v = v
                .as_str()
                .ok_or_else(|| at(hn, "non-string meta value".into()))?;
            meta.insert(k.clone(), v.to_string());
        }
    }

    let mut events = Vec::new();
    for (n, line) in lines {
        events.push(parse_event(line).map_err(|e| at(n, e))?);
    }
    if let Some(count) = declared {
        if count != events.len() as u64 {
            return Err(format!(
                "truncated: header declares {count} event(s), found {}",
                events.len()
            ));
        }
    }
    Ok((
        EventsHeader {
            count: events.len() as u64,
            dropped,
            meta,
        },
        events,
    ))
}

/// An [`EventSink`] that writes each event's JSONL line as it is
/// emitted — unbounded capture for short runs, where a ring's retention
/// bound would lose the beginning.
///
/// Wrap the writer in a `BufWriter`; the sink writes one small line per
/// event. I/O errors are latched (the trait's `emit` cannot fail) and
/// surfaced by [`StreamSink::finish`].
#[derive(Debug)]
pub struct StreamSink<W: Write> {
    w: W,
    next_seq: u64,
    error: Option<io::Error>,
}

impl<W: Write> StreamSink<W> {
    /// Writes the (count-less) header and returns the sink.
    ///
    /// # Errors
    ///
    /// Fails if the header cannot be written.
    pub fn new(mut w: W, meta: &BTreeMap<String, String>) -> io::Result<StreamSink<W>> {
        writeln!(w, "{}", header_line(None, 0, meta))?;
        Ok(StreamSink {
            w,
            next_seq: 0,
            error: None,
        })
    }

    /// Events emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Propagates the first emit-time write failure, or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> EventSink for StreamSink<W> {
    fn emit(&mut self, mut ev: CacheEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.error.is_none() {
            if let Err(e) = writeln!(self.w, "{}", event_line(&ev)) {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<CacheEvent> {
        let kinds = [
            EventKind::Fill { tag: 291, size: 4 },
            EventKind::PrefetchFill { tag: 292, size: 16 },
            EventKind::DemandHit { tag: 291 },
            EventKind::DemandMiss,
            EventKind::VictimHit { tag: 17, size: 8 },
            EventKind::VictimInsert { tag: 17, size: 8 },
            EventKind::VictimInsertFail { tag: 18, size: 12 },
            EventKind::SilentDrop {
                tag: 17,
                cause: DropCause::PairOverflow,
            },
            EventKind::Writeback { tag: 291, size: 6 },
            EventKind::Eviction {
                tag: 88,
                cause: EvictCause::SizePressure,
            },
            EventKind::Compression {
                encoder: 3,
                size: 4,
            },
        ];
        kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let mut ev = if matches!(
                    kind,
                    EventKind::DemandMiss | EventKind::VictimInsertFail { .. }
                ) {
                    CacheEvent::set_wide(17, kind)
                } else {
                    CacheEvent::new(17, i % 16, kind)
                };
                ev.seq = i as u64;
                ev
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips() {
        let events = one_of_each();
        let mut meta = BTreeMap::new();
        meta.insert("trace".to_string(), "specint.mcf.07".to_string());
        let text = write_events(&events, 5, &meta);
        let (header, parsed) = read_events(&text).expect("parse");
        assert_eq!(parsed, events);
        assert_eq!(header.count, events.len() as u64);
        assert_eq!(header.dropped, 5);
        assert_eq!(
            header.meta.get("trace").map(String::as_str),
            Some("specint.mcf.07")
        );
    }

    #[test]
    fn set_wide_events_omit_way() {
        let events = one_of_each();
        let text = write_events(&events, 0, &BTreeMap::new());
        let miss_line = text
            .lines()
            .find(|l| l.contains("\"miss\""))
            .expect("miss line");
        assert!(!miss_line.contains("\"way\""), "{miss_line}");
    }

    #[test]
    fn reader_errors_name_the_line() {
        // Wrong schema, on the header line.
        let wrong = write_events(&[], 0, &BTreeMap::new()).replace(EVENTS_SCHEMA, "bvsim-bench-v2");
        let err = read_events(&wrong).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("unsupported schema"), "{err}");

        // Unknown kind, on its own line.
        let events = one_of_each();
        let bad =
            write_events(&events, 0, &BTreeMap::new()).replace("\"victim-hit\"", "\"victim-hut\"");
        let err = read_events(&bad).unwrap_err();
        assert!(err.contains("line 6:"), "{err}");
        assert!(err.contains("unknown event kind"), "{err}");

        // Truncation against the declared count.
        let full = write_events(&events, 0, &BTreeMap::new());
        let cut: Vec<&str> = full.lines().take(4).collect();
        let err = read_events(&cut.join("\n")).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn stream_sink_produces_a_parseable_capture() {
        let mut meta = BTreeMap::new();
        meta.insert("llc".to_string(), "base-victim".to_string());
        let mut sink = StreamSink::new(Vec::new(), &meta).expect("header");
        for ev in one_of_each() {
            sink.emit(CacheEvent { seq: 0, ..ev }); // sink re-stamps seq
        }
        assert_eq!(sink.emitted(), 11);
        let bytes = sink.finish().expect("no io error");
        let text = String::from_utf8(bytes).unwrap();
        let (header, parsed) = read_events(&text).expect("parse");
        // A streamed header has no count; the reader counts the lines.
        assert_eq!(header.count, 11);
        assert_eq!(parsed.len(), 11);
        let seqs: Vec<u64> = parsed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..11).collect::<Vec<u64>>());
    }
}
