//! The schema-versioned JSONL sink.
//!
//! A [`TelemetryReport`] serializes to one JSONL document:
//!
//! ```text
//! {"schema":"bvsim-telemetry-v1","epoch_insts":100000,"epochs":2,"columns":[...],"meta":{...}}
//! {"epoch":0,"insts":100000,"ipc":1.31,...}
//! {"epoch":1,"insts":200000,"ipc":1.28,...}
//! {"hist":"epoch_dram_reads","buckets":[0,3,...]}
//! {"counters":[["llc.victim_inserts",412],...]}
//! ```
//!
//! The header line carries the schema tag and the column manifest
//! (names + types), so a reader can validate before touching data and a
//! `u64` counter column is never coerced through `f64`. Floats are
//! written with Rust's shortest-roundtrip formatting; integers keep
//! their lexeme — [`TelemetryReport::from_jsonl`] reconstructs a report
//! that compares equal to the one written.

use std::collections::BTreeMap;

use crate::hist::Log2Histogram;
use crate::json::{self, ObjWriter, Value};
use crate::series::{ColumnData, TimeSeries};

/// The schema identifier written to (and required from) every sink file.
pub const SCHEMA: &str = "bvsim-telemetry-v1";

/// Everything one instrumented run produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Sampling period in committed instructions.
    pub epoch_insts: u64,
    /// Free-form run identity (trace name, LLC kind, ...). A map so the
    /// serialized order is deterministic.
    pub meta: BTreeMap<String, String>,
    /// The per-epoch samples.
    pub series: TimeSeries,
    /// Named histograms, in recording order.
    pub histograms: Vec<(String, Log2Histogram)>,
    /// Whole-run counters as `(name, value)`, in registration order.
    pub counters: Vec<(String, u64)>,
}

impl TelemetryReport {
    /// Renders the report as a `bvsim-telemetry-v1` JSONL document
    /// (trailing newline included).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();

        let mut columns = String::from("[");
        for (i, col) in self.series.columns().iter().enumerate() {
            if i > 0 {
                columns.push(',');
            }
            let ty = match col.data() {
                ColumnData::U64(_) => "u64",
                ColumnData::F64(_) => "f64",
            };
            columns.push_str(
                ObjWriter::new()
                    .str("name", col.name())
                    .str("type", ty)
                    .finish()
                    .as_str(),
            );
        }
        columns.push(']');

        let mut meta = ObjWriter::new();
        for (k, v) in &self.meta {
            meta.str(k, v);
        }
        let meta = meta.finish();

        let mut header = ObjWriter::new();
        header
            .str("schema", SCHEMA)
            .u64("epoch_insts", self.epoch_insts)
            .u64("epochs", self.series.rows() as u64)
            .raw("columns", &columns)
            .raw("meta", &meta);
        out.push_str(&header.finish());
        out.push('\n');

        for row in 0..self.series.rows() {
            let mut line = ObjWriter::new();
            line.u64("epoch", row as u64);
            for col in self.series.columns() {
                match col.data() {
                    ColumnData::U64(v) => line.u64(col.name(), v[row]),
                    ColumnData::F64(v) => line.f64(col.name(), v[row]),
                };
            }
            out.push_str(&line.finish());
            out.push('\n');
        }

        for (name, hist) in &self.histograms {
            let mut line = ObjWriter::new();
            line.str("hist", name).u64_array("buckets", hist.buckets());
            out.push_str(&line.finish());
            out.push('\n');
        }

        let mut pairs = String::from("[");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                pairs.push(',');
            }
            pairs.push_str(&format!("[{},{value}]", json::quote(name)));
        }
        pairs.push(']');
        out.push_str(ObjWriter::new().raw("counters", &pairs).finish().as_str());
        out.push('\n');

        out
    }

    /// Parses a `bvsim-telemetry-v1` JSONL document back into a report.
    ///
    /// # Errors
    ///
    /// Returns `"line N: reason"` (1-based) for the first structural
    /// problem: wrong or missing schema tag, malformed JSON, a row
    /// missing a declared column, or a truncated file.
    pub fn from_jsonl(text: &str) -> Result<TelemetryReport, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let at = |n: usize, e: String| format!("line {}: {e}", n + 1);
        let (hn, first) = lines.next().ok_or("empty telemetry file")?;
        let header = json::parse(first).map_err(|e| at(hn, e))?;
        match header.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => {
                return Err(at(
                    hn,
                    format!("unsupported schema '{s}' (expected {SCHEMA})"),
                ))
            }
            None => return Err(at(hn, "missing schema tag in header".into())),
        }
        let epoch_insts = header
            .get("epoch_insts")
            .and_then(Value::as_u64)
            .ok_or_else(|| at(hn, "header missing epoch_insts".into()))?;
        let epochs = header
            .get("epochs")
            .and_then(Value::as_u64)
            .ok_or_else(|| at(hn, "header missing epochs".into()))? as usize;

        let mut meta = BTreeMap::new();
        if let Some(Value::Obj(m)) = header.get("meta") {
            for (k, v) in m {
                let v = v
                    .as_str()
                    .ok_or_else(|| at(hn, "non-string meta value".into()))?;
                meta.insert(k.clone(), v.to_string());
            }
        }

        let mut series = TimeSeries::new();
        let mut manifest = Vec::new();
        for col in header
            .get("columns")
            .and_then(Value::as_arr)
            .ok_or_else(|| at(hn, "header missing columns".into()))?
        {
            let name = col
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| at(hn, "column missing name".into()))?;
            let id = match col.get("type").and_then(Value::as_str) {
                Some("u64") => series.u64_column(name),
                Some("f64") => series.f64_column(name),
                other => return Err(at(hn, format!("bad column type {other:?} for '{name}'"))),
            };
            manifest.push((name.to_string(), id));
        }

        let mut last = hn;
        for row in 0..epochs {
            let (n, line) = lines
                .next()
                .ok_or_else(|| at(last + 1, format!("truncated: expected epoch row {row}")))?;
            last = n;
            let v = json::parse(line).map_err(|e| at(n, e))?;
            for (name, id) in &manifest {
                let field = v
                    .get(name)
                    .ok_or_else(|| at(n, format!("row {row} missing column '{name}'")))?;
                match series.column(name).map(|c| c.data()) {
                    Some(ColumnData::U64(_)) => series.push_u64(
                        *id,
                        field
                            .as_u64()
                            .ok_or_else(|| at(n, format!("row {row} column '{name}' not u64")))?,
                    ),
                    _ => series.push_f64(
                        *id,
                        field
                            .as_f64()
                            .ok_or_else(|| at(n, format!("row {row} column '{name}' not f64")))?,
                    ),
                }
            }
            series.end_row();
        }

        let mut histograms = Vec::new();
        let mut counters = Vec::new();
        for (n, line) in lines {
            let v = json::parse(line).map_err(|e| at(n, e))?;
            if let Some(name) = v.get("hist").and_then(Value::as_str) {
                let buckets: Vec<u64> = v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| at(n, "hist line missing buckets".into()))?
                    .iter()
                    .map(|b| b.as_u64().ok_or("non-integer bucket"))
                    .collect::<Result<_, _>>()
                    .map_err(|e| at(n, e.into()))?;
                let hist = Log2Histogram::from_buckets(&buckets)
                    .ok_or_else(|| at(n, format!("hist '{name}' has {} buckets", buckets.len())))?;
                histograms.push((name.to_string(), hist));
            } else if let Some(pairs) = v.get("counters").and_then(Value::as_arr) {
                for pair in pairs {
                    let pair = pair
                        .as_arr()
                        .ok_or_else(|| at(n, "counter entry is not a pair".into()))?;
                    match pair {
                        [name, value] => counters.push((
                            name.as_str()
                                .ok_or_else(|| at(n, "counter name is not a string".into()))?
                                .to_string(),
                            value
                                .as_u64()
                                .ok_or_else(|| at(n, "counter value is not a u64".into()))?,
                        )),
                        _ => return Err(at(n, "counter entry is not a pair".into())),
                    }
                }
            } else {
                return Err(at(n, "unrecognized trailer line".into()));
            }
        }

        Ok(TelemetryReport {
            epoch_insts,
            meta,
            series,
            histograms,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mut series = TimeSeries::new();
        let insts = series.u64_column("insts");
        let ipc = series.f64_column("ipc");
        for epoch in 0..4u64 {
            series.push_u64(insts, (epoch + 1) * 100_000);
            // Deliberately awkward floats: only exact shortest-roundtrip
            // rendering survives this equality check.
            series.push_f64(ipc, 1.0 / 3.0 + epoch as f64 * 0.1);
            series.end_row();
        }
        let mut hist = Log2Histogram::new();
        hist.record(0);
        hist.record(900);
        hist.record(u64::MAX);
        let mut meta = BTreeMap::new();
        meta.insert("trace".to_string(), "specint.mcf.07".to_string());
        meta.insert("llc".to_string(), "base-victim".to_string());
        TelemetryReport {
            epoch_insts: 100_000,
            meta,
            series,
            histograms: vec![("epoch_dram_reads".to_string(), hist)],
            counters: vec![
                ("llc.victim_inserts".to_string(), (1 << 53) + 1),
                ("encoder.zeros".to_string(), 7),
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_bit_identical() {
        let report = sample_report();
        let text = report.to_jsonl();
        let parsed = TelemetryReport::from_jsonl(&text).expect("parse");
        assert_eq!(parsed, report);
        // And the rendering itself is a fixed point.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn header_declares_schema_and_shape() {
        let text = sample_report().to_jsonl();
        let header = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(header.get("epochs").unwrap().as_u64(), Some(4));
        assert_eq!(header.get("columns").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample_report().to_jsonl().replace(SCHEMA, "bvsim-bench-v2");
        let err = TelemetryReport::from_jsonl(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let full = sample_report().to_jsonl();
        let cut: Vec<&str> = full.lines().take(3).collect();
        let err = TelemetryReport::from_jsonl(&cut.join("\n")).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn empty_and_garbage_inputs_are_rejected() {
        assert!(TelemetryReport::from_jsonl("").is_err());
        assert!(TelemetryReport::from_jsonl("{\"schema\":\"x\"}").is_err());
        assert!(TelemetryReport::from_jsonl("not json").is_err());
    }

    #[test]
    fn errors_name_the_offending_line() {
        // Header problems point at line 1.
        let wrong = sample_report().to_jsonl().replace(SCHEMA, "bvsim-bench-v2");
        let err = TelemetryReport::from_jsonl(&wrong).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");

        // Truncation points just past the last line present.
        let full = sample_report().to_jsonl();
        let cut: Vec<&str> = full.lines().take(3).collect();
        let err = TelemetryReport::from_jsonl(&cut.join("\n")).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        assert!(err.contains("truncated"), "{err}");

        // A corrupt epoch row points at its own line.
        let broken = full.replacen("\"epoch\":1,\"insts\"", "\"epoch\":1,\"wrong\"", 1);
        let err = TelemetryReport::from_jsonl(&broken).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn counters_preserve_registration_order() {
        let report = sample_report();
        let parsed = TelemetryReport::from_jsonl(&report.to_jsonl()).unwrap();
        let names: Vec<&str> = parsed.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["llc.victim_inserts", "encoder.zeros"]);
    }
}
