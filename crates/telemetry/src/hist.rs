//! Log2-bucketed histograms.
//!
//! Per-epoch quantities (DRAM bursts, victim drops) span several orders
//! of magnitude across program phases; a power-of-two bucketing captures
//! that shape in 65 fixed `u64`s with an O(1) record path — no dynamic
//! allocation, no data-dependent branching, deterministic by
//! construction.

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two bucket boundaries.
///
/// Bucket 0 counts exact zeros; bucket `b >= 1` counts samples in
/// `[2^(b-1), 2^b)`, i.e. `floor(log2(x)) + 1` for `x > 0`.
///
/// # Examples
///
/// ```
/// use bv_telemetry::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(0); // bucket 0
/// h.record(1); // bucket 1
/// h.record(5); // bucket 3: [4, 8)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.buckets()[3], 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
        }
    }

    /// The bucket index a value falls in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// The half-open range `[lo, hi)` a bucket covers; bucket 0 is the
    /// degenerate `[0, 1)`. The top bucket's `hi` saturates at
    /// `u64::MAX`.
    #[must_use]
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        assert!(bucket < LOG2_BUCKETS, "bucket {bucket} out of range");
        match bucket {
            0 => (0, 1),
            b => (1u64 << (b - 1), if b == 64 { u64::MAX } else { 1u64 << b }),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_of(value)] += 1;
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from stored bucket counts (the sink's parse
    /// path). Returns `None` if `buckets` has the wrong length.
    #[must_use]
    pub fn from_buckets(buckets: &[u64]) -> Option<Log2Histogram> {
        let buckets: [u64; LOG2_BUCKETS] = buckets.try_into().ok()?;
        Some(Log2Histogram { buckets })
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The highest non-empty bucket, if any sample was recorded.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the inclusive upper bound of
    /// the bucket holding that sample — a conservative estimate whose
    /// error is bounded by the power-of-two bucket width. `None` when
    /// the histogram is empty.
    ///
    /// Because the estimate walks one cumulative count, quantiles are
    /// monotone by construction: `percentile(0.5) <= percentile(0.95)
    /// <= percentile(0.99)` on any data.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the quantile sample, 1-based: p50 of 4 samples is
        // the 2nd, p99 of 4 is the 4th.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (_, hi) = Log2Histogram::bucket_range(bucket);
                return Some(hi - 1);
            }
        }
        // count() summed the same buckets, so the walk always crosses.
        unreachable!("cumulative bucket walk must reach the total count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b);
            assert!(lo < hi);
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[Log2Histogram::bucket_of(10)], 2);
        assert_eq!(a.max_bucket(), Some(Log2Histogram::bucket_of(1000)));
    }

    #[test]
    fn from_buckets_round_trips() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(77);
        let rebuilt = Log2Histogram::from_buckets(&h.buckets()[..]).unwrap();
        assert_eq!(rebuilt, h);
        assert!(Log2Histogram::from_buckets(&[1, 2, 3]).is_none());
    }

    #[test]
    fn empty_histogram_has_no_max_bucket() {
        assert_eq!(Log2Histogram::new().max_bucket(), None);
        assert_eq!(Log2Histogram::new().count(), 0);
    }

    #[test]
    fn percentile_picks_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        // p50 = 2nd of 4 samples = value 2, bucket [2,4) -> bound 3.
        assert_eq!(h.percentile(0.5), Some(3));
        // p99 = 4th sample = 100, bucket [64,128) -> bound 127.
        assert_eq!(h.percentile(0.99), Some(127));
        assert_eq!(h.percentile(0.0), Some(1), "rank floors at the 1st");
        assert_eq!(Log2Histogram::new().percentile(0.5), None);
    }

    #[test]
    fn percentiles_are_monotone_on_arbitrary_data() {
        // A deterministic pseudo-random spread over many magnitudes.
        let mut h = Log2Histogram::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x >> (x % 57));
        }
        let quantiles: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| h.percentile(q).expect("non-empty"))
            .collect();
        for pair in quantiles.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "quantiles must be monotone: {quantiles:?}"
            );
        }
    }
}
