//! A registry of named monotonic counters.
//!
//! Instrumentation registers a counter once (paying the name lookup and
//! allocation up front) and bumps it through a copyable [`CounterId`]
//! afterwards — an O(1) array add on the hot path. The registry
//! preserves registration order so sink output is deterministic.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// An append-only set of named `u64` counters.
///
/// # Examples
///
/// ```
/// use bv_telemetry::CounterRegistry;
///
/// let mut reg = CounterRegistry::new();
/// let drops = reg.register("victim.drops");
/// reg.add(drops, 3);
/// reg.add(drops, 1);
/// assert_eq!(reg.get("victim.drops"), Some(4));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterRegistry {
    names: Vec<String>,
    values: Vec<u64>,
}

impl CounterRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> CounterRegistry {
        CounterRegistry::default()
    }

    /// Registers a counter, starting at zero. Registering a name twice
    /// returns the existing counter.
    pub fn register(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.names.push(name.to_string());
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Adds to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id.0] += delta;
    }

    /// Sets a counter to an absolute value (for totals harvested once at
    /// the end of a run).
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.values[id.0] = value;
    }

    /// Reads a counter by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(self.values[i])
    }

    /// Number of registered counters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no counter is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut reg = CounterRegistry::new();
        let a = reg.register("a");
        let again = reg.register("a");
        assert_eq!(a, again);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut reg = CounterRegistry::new();
        let z = reg.register("z");
        let a = reg.register("a");
        reg.add(z, 1);
        reg.set(a, 9);
        let pairs: Vec<(&str, u64)> = reg.iter().collect();
        assert_eq!(pairs, vec![("z", 1), ("a", 9)]);
    }

    #[test]
    fn get_by_name() {
        let mut reg = CounterRegistry::new();
        let a = reg.register("hits");
        reg.add(a, 2);
        assert_eq!(reg.get("hits"), Some(2));
        assert_eq!(reg.get("misses"), None);
        assert!(!reg.is_empty());
    }
}
