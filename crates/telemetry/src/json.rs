//! A minimal JSON reader/writer shared by the telemetry sink and the
//! run journal (re-exported as `bv_runner::json`).
//!
//! The build environment has no crate registry, so serde is not an
//! option; the records written here are flat (objects of numbers,
//! strings, and short arrays), which this ~200-line implementation
//! covers completely. Numbers keep their source lexeme so 64-bit
//! counters round trip exactly instead of through `f64`, and floats are
//! rendered with Rust's shortest-roundtrip formatting so they parse back
//! bit-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as its source lexeme for lossless integers.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, if it is an integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// A field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Escapes and quotes a string for embedding in JSON output.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incremental writer for one JSON object: `field` calls append
/// pre-rendered values, `finish` closes the braces.
#[derive(Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> ObjWriter {
        ObjWriter { buf: String::new() }
    }

    /// Appends `"key": <rendered>` where `rendered` is already valid JSON.
    pub fn raw(&mut self, key: &str, rendered: &str) -> &mut ObjWriter {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&quote(key));
        self.buf.push(':');
        self.buf.push_str(rendered);
        self
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, val: &str) -> &mut ObjWriter {
        let q = quote(val);
        self.raw(key, &q)
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, val: u64) -> &mut ObjWriter {
        self.raw(key, &val.to_string())
    }

    /// Appends a float field (finite; NaN/inf become null).
    pub fn f64(&mut self, key: &str, val: f64) -> &mut ObjWriter {
        if val.is_finite() {
            let s = format!("{val}");
            self.raw(key, &s)
        } else {
            self.raw(key, "null")
        }
    }

    /// Appends an array-of-u64 field.
    pub fn u64_array(&mut self, key: &str, vals: &[u64]) -> &mut ObjWriter {
        let body: Vec<String> = vals.iter().map(u64::to_string).collect();
        let s = format!("[{}]", body.join(","));
        self.raw(key, &s)
    }

    /// The completed object.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An incremental writer for one JSON array: `push` calls append
/// pre-rendered elements, `finish` closes the brackets. The array dual
/// of [`ObjWriter`], used by the serve protocol to embed lists of
/// rendered objects (sweep grids, job descriptors) in a message.
#[derive(Default)]
pub struct ArrWriter {
    buf: String,
}

impl ArrWriter {
    /// Starts an empty array.
    #[must_use]
    pub fn new() -> ArrWriter {
        ArrWriter { buf: String::new() }
    }

    /// Appends `<rendered>`, which must already be valid JSON.
    pub fn raw(&mut self, rendered: &str) -> &mut ArrWriter {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(rendered);
        self
    }

    /// Appends a string element.
    pub fn str(&mut self, val: &str) -> &mut ArrWriter {
        let q = quote(val);
        self.raw(&q)
    }

    /// Appends an unsigned integer element.
    pub fn u64(&mut self, val: u64) -> &mut ArrWriter {
        self.raw(&val.to_string())
    }

    /// The completed array.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let lexeme = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if lexeme.parse::<f64>().is_err() {
        return Err(format!("bad number '{lexeme}' at offset {start}"));
    }
    Ok(Value::Num(lexeme.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are absent from journal data;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged since the input is valid UTF-8).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut w = ObjWriter::new();
        w.str("name", "a\"b\\c\nd")
            .u64("count", u64::MAX)
            .f64("ratio", 0.5)
            .u64_array("hist", &[1, 2, 3]);
        let text = w.finish();
        let v = parse(&text).expect("parse");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        let hist: Vec<u64> = v
            .get("hist")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(hist, vec![1, 2, 3]);
    }

    #[test]
    fn arr_writer_roundtrips() {
        let mut a = ArrWriter::new();
        a.str("x\"y")
            .u64(7)
            .raw(&ObjWriter::new().u64("k", 1).finish());
        let v = parse(&a.finish()).expect("parse");
        let items = v.as_arr().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_str(), Some("x\"y"));
        assert_eq!(items[1].as_u64(), Some(7));
        assert_eq!(items[2].get("k").unwrap().as_u64(), Some(1));
        assert_eq!(ArrWriter::new().finish(), "[]");
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = (1u64 << 53) + 1; // not representable in f64
        let text = ObjWriter::new().u64("n", big).finish();
        assert_eq!(parse(&text).unwrap().get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": true, "d": -2.5e3}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#"{"s": "café"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("café"));
    }
}
