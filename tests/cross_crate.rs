//! Cross-crate integration tests: the facade re-exports compose, the
//! compression algorithms agree with the LLC's size accounting, and the
//! area model matches the organizations' geometry.

use base_victim::llc::area::AreaModel;
use base_victim::{
    BaseVictimLlc, Bdi, CacheGeometry, CacheLine, Compressor, LineAddr, LlcOrganization, NoInner,
    PolicyKind, SegmentCount, TraceRegistry, UncompressedLlc, VictimPolicyKind, VscLlc,
};

#[test]
fn facade_reexports_compose() {
    // Build one of everything through the facade paths only.
    let geom = CacheGeometry::new(4096, 4, 64);
    let _unc = UncompressedLlc::new(geom, PolicyKind::Nru);
    let _bv = BaseVictimLlc::new(geom, PolicyKind::Srrip, VictimPolicyKind::RandomFit);
    let _vsc = VscLlc::new(geom, PolicyKind::Lru);
    let _ = TraceRegistry::paper_default();
    let _ = AreaModel::paper_default();
}

#[test]
fn llc_size_accounting_matches_bdi() {
    // The size stored in the Base-Victim tag metadata must equal what the
    // BDI compressor reports for the same bytes.
    let geom = CacheGeometry::new(4096, 4, 64);
    let mut llc = BaseVictimLlc::new(geom, PolicyKind::Lru, VictimPolicyKind::EcmLargestBase);
    let mut inner = NoInner;
    let bdi = Bdi::new();

    let lines = [
        CacheLine::zeroed(),
        CacheLine::from_u64_words(&[42; 8]),
        CacheLine::from_u64_words(&core::array::from_fn(|i| 0x1000_0000 + i as u64)),
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        })),
    ];
    for (i, line) in lines.iter().enumerate() {
        let addr = LineAddr::new(i as u64 * 16); // distinct sets
        llc.fill(addr, *line, &mut inner);
        let out = llc.read(addr, &mut inner);
        assert_eq!(out.kind.size(), Some(bdi.compressed_size(line)));
    }
}

#[test]
fn registry_traces_produce_their_declared_compressibility() {
    // Synthesize data through a friendly trace's generator and verify the
    // BDI size distribution is genuinely bimodal vs an unfriendly trace.
    let registry = TraceRegistry::paper_default();
    let bdi = Bdi::new();
    let measure = |name: &str| {
        let t = registry.get(name).expect("trace");
        let mut gen = t.workload.generator();
        let mut total = 0u32;
        let mut segs = 0u32;
        for _ in 0..2000 {
            let ev = gen.next_event();
            segs += u32::from(bdi.compressed_size(&gen.line_data(ev.addr)).get());
            total += 16;
        }
        f64::from(segs) / f64::from(total)
    };
    let friendly = measure("specint.xalancbmk.00");
    let unfriendly = measure("specint.xalancbmk.16");
    assert!(
        friendly + 0.2 < unfriendly,
        "friendly {friendly:.2} should compress far better than unfriendly {unfriendly:.2}"
    );
}

#[test]
fn area_model_matches_llc_geometry() {
    let m = AreaModel::paper_default();
    let geom = CacheGeometry::new(
        m.cache_bytes as usize,
        m.ways as usize,
        m.line_bytes as usize,
    );
    assert_eq!(geom.sets() as u64, m.sets());
    assert_eq!(geom.index_bits(), m.index_bits());
}

#[test]
fn segment_count_is_shared_across_crates() {
    // One SegmentCount type flows from the compressor through the LLC.
    let bdi = Bdi::new();
    let size: SegmentCount = bdi.compressed_size(&CacheLine::zeroed());
    assert_eq!(size, SegmentCount::MIN);
    let geom = CacheGeometry::new(1024, 4, 64);
    let llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
    assert_eq!(llc.decompression_latency(size), 0);
}

#[test]
fn telemetry_from_a_real_run_round_trips_bit_identical() {
    // The paper-grade acceptance bar for the JSONL sink: a report built
    // from an actual sampled simulation — awkward floats and all — must
    // parse back into identical TimeSeries, histogram, and counter
    // values, and re-serialize to the same bytes.
    use base_victim::sim::{SimConfig, SimTelemetry, System};
    use base_victim::telemetry::TelemetryReport;
    use base_victim::LlcKind;

    let registry = TraceRegistry::paper_default();
    let trace = registry.get("specint.mcf.07").expect("trace");
    let mut tel = SimTelemetry::new(20_000).with_meta("trace", &trace.name);
    let _ = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_sampled(
        &trace.workload,
        20_000,
        100_000,
        &mut tel,
    );
    let report = tel.into_report();
    assert!(report.series.rows() >= 5);

    let text = report.to_jsonl();
    let back = TelemetryReport::from_jsonl(&text).expect("own output parses");
    assert_eq!(back, report);
    assert_eq!(back.to_jsonl(), text);
}

#[test]
fn vsc_functional_capacity_exceeds_base_victim_bound() {
    // Section V: VSC's flexible compaction reaches higher effective
    // capacity than the two-tags-per-way bound — that is exactly the
    // flexibility Base-Victim trades away for simplicity.
    let geom = CacheGeometry::new(1024, 4, 64);
    let mut vsc = VscLlc::new(geom, PolicyKind::Lru);
    let mut inner = NoInner;
    // 2-segment lines: VSC packs 8 per set (tag limited), two-tag packs 8
    // too; but with 5-segment lines VSC fits 12 per set *worth* while the
    // two-tag design is limited to 2 per physical way.
    let line = CacheLine::from_u64_words(&[7; 8]); // 2 segments
    for k in 0..8u64 {
        let addr = LineAddr::new(k * 4);
        if !vsc.read(addr, &mut inner).is_hit() {
            vsc.fill(addr, line, &mut inner);
        }
    }
    assert_eq!(vsc.resident_lines().len(), 8, "2x tags fully used");
    vsc.assert_invariants();
}
