//! The event path must not perturb simulation results.
//!
//! Two guarantees, checked through the facade crate:
//!
//! * **Disabled is invisible.** The default build monomorphizes every
//!   organization over `NoEventSink`, so the 49 committed goldens (see
//!   `tests/golden_snapshot.rs`) double as the bit-identity proof for
//!   the untraced build — they were recorded before the event layer
//!   existed and must never need regeneration because of it.
//! * **Enabled is observation-only.** A traced run (ring sink attached)
//!   must produce a [`base_victim::RunResult`] equal in every field to
//!   the untraced run of the same configuration: events are emitted
//!   *about* decisions, never *into* them.

use base_victim::events::RingSink;
use base_victim::{LlcKind, SimConfig, System, TraceRegistry};

#[test]
fn traced_run_matches_untraced_run_for_every_organization() {
    let registry = TraceRegistry::paper_default();
    let trace = registry.all().next().expect("non-empty registry");
    let kinds = [
        LlcKind::Uncompressed,
        LlcKind::TwoTag,
        LlcKind::TwoTagEcm,
        LlcKind::BaseVictim,
        LlcKind::BaseVictimNonInclusive,
        LlcKind::Vsc,
        LlcKind::Dcc,
    ];
    for kind in kinds {
        let cfg = SimConfig::single_thread(kind);
        let system = System::new(cfg);
        let plain = system.run_with_warmup(&trace.workload, 2_000, 6_000);

        let sink = RingSink::new(1 << 16);
        let llc = cfg.llc_kind.build_traced(cfg.llc, cfg.llc_policy, sink);
        let (traced, mut llc) = system.run_traced(&trace.workload, 2_000, 6_000, llc);

        assert_eq!(plain, traced, "{} diverged under tracing", kind.name());
        let events = llc.drain_events();
        assert!(
            !events.is_empty(),
            "{} emitted no events in a traced run",
            kind.name()
        );
        // Sequence numbers are stamped by the sink in emission order.
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "{} events out of order",
            kind.name()
        );
    }
}
