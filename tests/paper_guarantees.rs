//! End-to-end integration tests of the paper's architectural guarantees,
//! exercised through the full simulated system (L1/L2/LLC/DRAM with
//! prefetching) on registry workloads.

use base_victim::{LlcKind, SimConfig, System, TraceRegistry};

const WARMUP: u64 = 300_000;
const INSTS: u64 = 300_000;

fn sample_traces(registry: &TraceRegistry) -> Vec<&base_victim::TraceSpec> {
    // A deterministic cross-section: two per category, both classes.
    let names = [
        "specfp.cactusadm.00",
        "specfp.gemsfdtd.14", // low-compressibility band (index 13..18)
        "specint.mcf.07",
        "specint.xalancbmk.16",
        "productivity.sysmark.00",
        "client.octane.00",
        "client.speech.13",
    ];
    names.iter().filter_map(|n| registry.get(n)).collect()
}

/// The headline guarantee: Base-Victim never increases memory reads and
/// never decreases LLC hits, for any workload.
#[test]
fn hit_rate_guarantee_end_to_end() {
    let registry = TraceRegistry::paper_default();
    let traces = sample_traces(&registry);
    assert!(traces.len() >= 5, "sample traces must resolve");
    for t in traces {
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run_with_warmup(
            &t.workload,
            WARMUP,
            INSTS,
        );
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &t.workload,
            WARMUP,
            INSTS,
        );
        assert!(
            bv.llc.read_misses <= base.llc.read_misses,
            "{}: Base-Victim misses {} > uncompressed {}",
            t.name,
            bv.llc.read_misses,
            base.llc.read_misses
        );
        assert!(
            bv.dram.reads <= base.dram.reads,
            "{}: Base-Victim DRAM reads {} > uncompressed {}",
            t.name,
            bv.dram.reads,
            base.dram.reads
        );
    }
}

/// The paper's one-writeback-per-fill property: the Victim cache is always
/// clean, so Base-Victim issues no more DRAM writes than the baseline.
#[test]
fn no_extra_writebacks() {
    let registry = TraceRegistry::paper_default();
    for t in sample_traces(&registry) {
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run_with_warmup(
            &t.workload,
            WARMUP,
            INSTS,
        );
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &t.workload,
            WARMUP,
            INSTS,
        );
        // The victim cache saves reads but never writes (Section IV.A):
        // writeback traffic must match the baseline's (same dirty lines,
        // possibly shifted in time by at most the warmup boundary).
        let drift = base.dram.writes / 5 + 200;
        assert!(
            bv.dram.writes <= base.dram.writes + drift,
            "{}: writes {} vs baseline {}",
            t.name,
            bv.dram.writes,
            base.dram.writes
        );
    }
}

/// Guarantee holds under every baseline replacement policy (Figure 10's
/// premise: compression must not break the policy's behavior).
#[test]
fn guarantee_holds_for_all_policies() {
    use base_victim::PolicyKind;
    let registry = TraceRegistry::paper_default();
    let t = registry.get("specint.mcf.07").expect("trace exists");
    for policy in [
        PolicyKind::Nru,
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::CharLite,
    ] {
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed).with_policy(policy))
            .run_with_warmup(&t.workload, WARMUP, INSTS);
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim).with_policy(policy))
            .run_with_warmup(&t.workload, WARMUP, INSTS);
        assert!(
            bv.llc.read_misses <= base.llc.read_misses,
            "policy {policy}: guarantee violated"
        );
    }
}

/// The two-tag baselines carry no such guarantee: their read traffic can
/// exceed the baseline on low-compressibility traces (the Section III
/// negative interaction).
#[test]
fn two_tag_has_no_guarantee_but_runs_clean() {
    let registry = TraceRegistry::paper_default();
    let t = registry
        .get("specfp.gemsfdtd.14")
        .expect("low-compressibility trace");
    assert!(!t.compression_friendly);
    for kind in [LlcKind::TwoTag, LlcKind::TwoTagEcm] {
        let r =
            System::new(SimConfig::single_thread(kind)).run_with_warmup(&t.workload, WARMUP, INSTS);
        assert!(r.instructions >= INSTS);
        assert!(r.ipc() > 0.0);
    }
}

/// Multi-program: the shared-LLC hit rate is at least the baseline's for
/// every mix (Section VI.C).
#[test]
fn multiprogram_hit_rate_guarantee() {
    use base_victim::trace::mix::paper_mixes;
    use base_victim::MulticoreSystem;
    let registry = TraceRegistry::paper_default();
    let mixes = paper_mixes(&registry);
    for mix in mixes.iter().take(2) {
        let members = mix.resolve(&registry);
        let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
        let base = MulticoreSystem::new(SimConfig::multi_program(LlcKind::Uncompressed))
            .run(&workloads, 150_000);
        let bv = MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim))
            .run(&workloads, 150_000);
        assert!(
            bv.llc.hit_rate() >= base.llc.hit_rate() - 1e-12,
            "{}: hit rate {:.4} < baseline {:.4}",
            mix.name,
            bv.llc.hit_rate(),
            base.llc.hit_rate()
        );
    }
}

/// Determinism across the whole stack: identical runs produce identical
/// counters (required for reproducible experiments).
#[test]
fn full_system_determinism() {
    let registry = TraceRegistry::paper_default();
    let t = registry.get("client.octane.00").expect("trace exists");
    let run = || {
        System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &t.workload,
            100_000,
            100_000,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.llc, b.llc);
    assert_eq!(a.dram, b.dram);
    assert_eq!(a.level_hits, b.level_hits);
}
