//! Replays every committed `.bvfuzz.json` reproducer in `tests/corpus/`.
//!
//! The corpus is the fuzzer's regression memory: each file is either a
//! minimized fuzz-found counterexample (which must *stay fixed* — its
//! property must no longer trip) or an injected self-test reproducer
//! (which must *stay detected* — the auditors must keep seeing the
//! fault). Both directions are the same assertion: `verdict` is `Ok`.
//!
//! To add a case: `bvsim fuzz --inject --out tests/corpus/<name>`, or
//! save a campaign failure with `--out` once it is fixed.

use base_victim::fuzz::{load, verdict, EXTENSION};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

#[test]
fn every_committed_reproducer_replays_green() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.to_string_lossy().ends_with(EXTENSION))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "tests/corpus/ holds at least the seed reproducers"
    );
    for path in &paths {
        let case = load(path).unwrap_or_else(|e| panic!("corpus parse: {e}"));
        let v = verdict(&case);
        assert!(
            v.is_ok(),
            "{}: {}",
            path.display(),
            v.err()
                .map(|f| format!("{}: {}", f.property, f.detail))
                .unwrap_or_default()
        );
    }
}

#[test]
fn corpus_covers_both_domains_and_injection() {
    use base_victim::fuzz::Domain;
    let mut llc = 0;
    let mut kv = 0;
    let mut injected = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus/ exists") {
        let path = entry.expect("readable dir entry").path();
        if !path.to_string_lossy().ends_with(EXTENSION) {
            continue;
        }
        let case = load(&path).unwrap_or_else(|e| panic!("corpus parse: {e}"));
        match case.domain() {
            Domain::Llc => llc += 1,
            Domain::Kv => kv += 1,
        }
        if case.inject_at.is_some() {
            injected += 1;
        }
    }
    assert!(llc >= 1, "corpus needs an LLC case");
    assert!(kv >= 1, "corpus needs a kv case");
    assert!(injected >= 2, "corpus needs injected self-test reproducers");
}
