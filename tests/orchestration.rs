//! Orchestration guarantees exercised through the facade crate, so the
//! default `cargo test` run covers them: parallel execution is
//! bit-identical to serial, and a journaled sweep resumes without
//! re-simulating completed configurations.

use base_victim::runner::{JobSpec, Runner};
use base_victim::{LlcKind, SimConfig, TraceRegistry};

fn tiny_jobs(registry: &TraceRegistry) -> Vec<JobSpec> {
    registry
        .all()
        .take(3)
        .flat_map(|t| {
            [LlcKind::Uncompressed, LlcKind::BaseVictim]
                .map(|kind| JobSpec::new(&t.name, SimConfig::single_thread(kind), 2_000, 4_000))
        })
        .collect()
}

#[test]
fn parallel_execution_is_deterministic() {
    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let serial = Runner::new(1);
    let parallel = Runner::new(4);
    serial.execute(&registry, &jobs);
    parallel.execute(&registry, &jobs);
    for job in &jobs {
        assert_eq!(serial.get(job), parallel.get(job), "job {}", job.key());
    }
}

#[test]
fn journaled_sweep_resumes_with_zero_resimulation() {
    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("facade-journal");
    let _ = std::fs::remove_dir_all(&dir);

    {
        let first = Runner::new(2).with_journal(&dir, false).expect("journal");
        assert_eq!(first.execute(&registry, &jobs).simulated, jobs.len());
    }
    let resumed = Runner::new(2).with_journal(&dir, true).expect("journal");
    let report = resumed.execute(&registry, &jobs);
    assert_eq!(report.simulated, 0);
    assert_eq!(report.from_journal, jobs.len());

    let _ = std::fs::remove_dir_all(&dir);
}
