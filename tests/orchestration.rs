//! Orchestration guarantees exercised through the facade crate, so the
//! default `cargo test` run covers them: parallel execution is
//! bit-identical to serial, and a journaled sweep resumes without
//! re-simulating completed configurations.

use base_victim::runner::{JobSpec, Runner};
use base_victim::{LlcKind, SimConfig, TraceRegistry};

fn tiny_jobs(registry: &TraceRegistry) -> Vec<JobSpec> {
    registry
        .all()
        .take(3)
        .flat_map(|t| {
            [LlcKind::Uncompressed, LlcKind::BaseVictim]
                .map(|kind| JobSpec::new(&t.name, SimConfig::single_thread(kind), 2_000, 4_000))
        })
        .collect()
}

#[test]
fn parallel_execution_is_deterministic() {
    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let serial = Runner::new(1);
    let parallel = Runner::new(4);
    serial.execute(&registry, &jobs);
    parallel.execute(&registry, &jobs);
    for job in &jobs {
        assert_eq!(serial.get(job), parallel.get(job), "job {}", job.key());
    }
}

#[test]
fn journaled_sweep_resumes_with_zero_resimulation() {
    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("facade-journal");
    let _ = std::fs::remove_dir_all(&dir);

    {
        let first = Runner::new(2).with_journal(&dir, false).expect("journal");
        assert_eq!(first.execute(&registry, &jobs).simulated, jobs.len());
    }
    let resumed = Runner::new(2).with_journal(&dir, true).expect("journal");
    let report = resumed.execute(&registry, &jobs);
    assert_eq!(report.simulated, 0);
    assert_eq!(report.from_journal, jobs.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runs_journal_records_duration_and_resume_preserves_it() {
    use base_victim::runner::json;

    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("facade-durations");
    let _ = std::fs::remove_dir_all(&dir);

    {
        let first = Runner::new(2).with_journal(&dir, false).expect("journal");
        assert_eq!(first.execute(&registry, &jobs).simulated, jobs.len());
    }
    let runs_path = dir.join("runs.jsonl");
    let runs = std::fs::read_to_string(&runs_path).expect("runs.jsonl");
    assert_eq!(runs.lines().count(), jobs.len());
    for line in runs.lines() {
        let v = json::parse(line).expect("valid runs.jsonl line");
        let field = |key: &str| v.get(key).and_then(json::Value::as_u64);
        let ms = field("duration_ms").expect("duration_ms field");
        let queue_ms = field("queue_ms").expect("queue_ms field");
        let sim_ms = field("sim_ms").expect("sim_ms field");
        let wall = v
            .get("wall_secs")
            .and_then(json::Value::as_f64)
            .expect("wall_secs field");
        // duration_ms is the phase sum, and a plain sweep has no queue
        // phase: pool workers claim jobs the moment a thread is free.
        assert_eq!(ms, queue_ms + sim_ms);
        assert_eq!(queue_ms, 0, "sweep-mode rows must not report queue wait");
        assert_eq!(sim_ms, (wall * 1000.0).round() as u64);
    }

    // Resume serves every job from checkpoints; the observability stream
    // is untouched, so the recorded durations survive verbatim.
    let resumed = Runner::new(2).with_journal(&dir, true).expect("journal");
    assert_eq!(resumed.execute(&registry, &jobs).from_journal, jobs.len());
    let after = std::fs::read_to_string(&runs_path).expect("runs.jsonl");
    assert_eq!(after, runs, "resume must preserve journaled durations");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_sweep_writes_one_file_per_simulated_job() {
    let registry = TraceRegistry::paper_default();
    let jobs = tiny_jobs(&registry);
    let base = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("facade-telemetry");
    let journal_dir = base.join("journal");
    let tel_dir = base.join("telemetry");
    let _ = std::fs::remove_dir_all(&base);

    {
        let first = Runner::new(2)
            .with_journal(&journal_dir, false)
            .expect("journal")
            .with_telemetry(&tel_dir, 1_000)
            .expect("telemetry dir");
        assert_eq!(first.execute(&registry, &jobs).simulated, jobs.len());
    }

    // One telemetry file per simulated job, named by the job hash, and
    // each runs.jsonl line carries the path of the file its run wrote.
    let runs = std::fs::read_to_string(journal_dir.join("runs.jsonl")).expect("runs.jsonl");
    assert_eq!(runs.lines().count(), jobs.len());
    for job in &jobs {
        let path = tel_dir.join(format!("{:016x}.telemetry.jsonl", job.stable_hash()));
        assert!(path.is_file(), "missing telemetry file {}", path.display());
        let text = std::fs::read_to_string(&path).expect("telemetry file");
        let report =
            base_victim::telemetry::TelemetryReport::from_jsonl(&text).expect("valid telemetry");
        assert!(report.series.rows() > 0, "empty series for {}", job.key());
        assert!(runs.contains(&path.display().to_string()));
    }

    // Resume satisfies every job from the journal without re-simulating,
    // so a deleted telemetry file stays deleted: telemetry describes the
    // run that actually happened, never a checkpoint replay.
    let victim = tel_dir.join(format!("{:016x}.telemetry.jsonl", jobs[0].stable_hash()));
    std::fs::remove_file(&victim).expect("delete one telemetry file");
    let resumed = Runner::new(2)
        .with_journal(&journal_dir, true)
        .expect("journal")
        .with_telemetry(&tel_dir, 1_000)
        .expect("telemetry dir");
    let report = resumed.execute(&registry, &jobs);
    assert_eq!(report.simulated, 0);
    assert!(!victim.exists(), "resume must not re-write telemetry");

    let _ = std::fs::remove_dir_all(&base);
}
