//! Golden end-to-end snapshots: every counter the simulator emits, for the
//! paper-guarantee sample traces under the three headline organizations
//! plus the VSC and DCC prior-work baselines, pinned byte-for-byte against
//! committed JSON files.
//!
//! Any change to the kernels, the cache organizations, or the timing model
//! that shifts a single counter fails here — the size-cache memoization and
//! the word-wise kernel rewrites must be behaviorally invisible.
//!
//! Regenerate after an *intentional* behavior change with:
//!
//! ```text
//! BV_UPDATE_GOLDENS=1 cargo test --test golden_snapshot
//! ```

use base_victim::kvcache::{run_kv, KvConfig, KvOrgKind, KvRunResult};
use base_victim::runner::json::{parse, ObjWriter, Value};
use base_victim::trace::request::RequestProfile;
use base_victim::{LlcKind, PolicyKind, RunResult, SimConfig, System, TraceRegistry};
use std::path::PathBuf;

const WARMUP: u64 = 150_000;
const INSTS: u64 = 150_000;

/// Same cross-section as `paper_guarantees.rs`.
const TRACES: [&str; 7] = [
    "specfp.cactusadm.00",
    "specfp.gemsfdtd.14",
    "specint.mcf.07",
    "specint.xalancbmk.16",
    "productivity.sysmark.00",
    "client.octane.00",
    "client.speech.13",
];

const LLCS: [LlcKind; 5] = [
    LlcKind::Uncompressed,
    LlcKind::BaseVictim,
    LlcKind::TwoTag,
    LlcKind::Vsc,
    LlcKind::Dcc,
];

/// Replacement-policy dimension, pinned for base-victim only: the default
/// config already runs NRU, so these files pin NRU explicitly plus SRRIP
/// (the paper's Figure 10 sensitivity study).
const POLICIES: [PolicyKind; 2] = [PolicyKind::Nru, PolicyKind::Srrip];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

/// Renders one parsed snapshot field for a diff line.
fn render(v: Option<&Value>) -> String {
    match v {
        None => "<missing>".to_string(),
        Some(Value::Num(s)) => s.clone(),
        Some(Value::Str(s)) => format!("\"{s}\""),
        Some(Value::Arr(items)) => {
            let body: Vec<String> = items.iter().map(|i| render(Some(i))).collect();
            format!("[{}]", body.join(", "))
        }
        Some(other) => format!("{other:?}"),
    }
}

/// Explains a snapshot mismatch counter-by-counter: every key whose value
/// differs between the committed golden and the current run, with both
/// sides shown, so a one-counter drift reads as one line instead of two
/// walls of JSON. Falls back to the raw blobs if either side fails to
/// parse as an object (a corrupt golden is itself the finding).
fn describe_mismatch(want: &str, got: &str) -> String {
    let (Ok(Value::Obj(want_map)), Ok(Value::Obj(got_map))) = (parse(want), parse(got)) else {
        return format!("  golden : {want}\n  current: {got}");
    };
    let mut lines = Vec::new();
    let keys: std::collections::BTreeSet<&String> = want_map.keys().chain(got_map.keys()).collect();
    for key in keys {
        let w = want_map.get(key.as_str());
        let g = got_map.get(key.as_str());
        if w != g {
            lines.push(format!(
                "  {key}: expected {}, actual {}",
                render(w),
                render(g)
            ));
        }
    }
    if lines.is_empty() {
        // Same parsed content, different bytes (whitespace, key order):
        // still a failure, and the blobs are the only way to see why.
        return format!("  formatting-only difference\n  golden : {want}\n  current: {got}");
    }
    lines.join("\n")
}

/// Every integer counter in a [`RunResult`], as one stable JSON object.
/// Floats (IPC, ratios) are derived from these and deliberately excluded.
fn snapshot(run: &RunResult) -> String {
    let mut w = ObjWriter::new();
    w.str("llc_name", run.llc_name)
        .u64("instructions", run.instructions)
        .u64("cycles", run.cycles)
        .u64("base_hits", run.llc.base_hits)
        .u64("victim_hits", run.llc.victim_hits)
        .u64("read_misses", run.llc.read_misses)
        .u64("writeback_hits", run.llc.writeback_hits)
        .u64("writeback_misses", run.llc.writeback_misses)
        .u64("prefetch_fills", run.llc.prefetch_fills)
        .u64("prefetch_hits", run.llc.prefetch_hits)
        .u64("demand_fills", run.llc.demand_fills)
        .u64("memory_writes", run.llc.memory_writes)
        .u64("back_invalidations", run.llc.back_invalidations)
        .u64("migrations", run.llc.migrations)
        .u64("partner_evictions", run.llc.partner_evictions)
        .u64("victim_inserts", run.llc.victim_inserts)
        .u64("victim_insert_failures", run.llc.victim_insert_failures)
        .u64("dram_reads", run.dram.reads)
        .u64("dram_writes", run.dram.writes)
        .u64("dram_row_hits", run.dram.row_hits)
        .u64("dram_row_misses", run.dram.row_misses)
        .u64_array("level_hits", &run.level_hits)
        .u64_array("compression_histogram", &run.compression.histogram());
    w.finish()
}

/// Compares one run against its committed golden, or rewrites the golden
/// when `update` is set. Appends a diff description to `failures` on
/// mismatch.
fn check_one(
    cfg: SimConfig,
    trace_name: &str,
    file_stem: &str,
    registry: &TraceRegistry,
    update: bool,
    failures: &mut Vec<String>,
) {
    let trace = registry.get(trace_name).expect("sample trace in registry");
    let run = System::new(cfg).run_with_warmup(&trace.workload, WARMUP, INSTS);
    let got = snapshot(&run);
    let dir = golden_dir();
    let path = dir.join(format!("{file_stem}.json"));
    if update {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
        std::fs::write(&path, format!("{got}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with BV_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if want.trim_end() != got {
        failures.push(format!(
            "{file_stem}:\n{}",
            describe_mismatch(want.trim_end(), &got)
        ));
    }
}

#[test]
fn end_to_end_counters_match_committed_goldens() {
    let update = std::env::var_os("BV_UPDATE_GOLDENS").is_some();
    let registry = TraceRegistry::paper_default();
    let mut failures = Vec::new();
    for trace_name in TRACES {
        for kind in LLCS {
            check_one(
                SimConfig::single_thread(kind),
                trace_name,
                &format!("{}.{}", trace_name, kind.name()),
                &registry,
                update,
                &mut failures,
            );
        }
        for policy in POLICIES {
            check_one(
                SimConfig::single_thread(LlcKind::BaseVictim).with_policy(policy),
                trace_name,
                &format!("{}.base-victim.{}", trace_name, policy.name()),
                &registry,
                update,
                &mut failures,
            );
        }
    }
    assert!(
        failures.is_empty(),
        "{} snapshot(s) diverged from committed goldens \
         (BV_UPDATE_GOLDENS=1 to regenerate after an intentional change):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Every integer counter the kv tier emits, as one stable JSON object.
/// Same exclusion rule as [`snapshot`]: floats are derived and left out.
fn kv_snapshot(run: &KvRunResult) -> String {
    let mut w = ObjWriter::new();
    w.str("org", run.org.name())
        .str("profile", &run.profile)
        .u64("budget", run.budget)
        .u64("requests", run.requests)
        .u64("warmup", run.warmup)
        .u64("seed", run.seed)
        .u64("gets", run.stats.gets)
        .u64("base_hits", run.stats.base_hits)
        .u64("victim_hits", run.stats.victim_hits)
        .u64("misses", run.stats.misses)
        .u64("puts", run.stats.puts)
        .u64("admitted", run.stats.admitted)
        .u64("bypassed", run.stats.bypassed)
        .u64("evictions", run.stats.evictions)
        .u64("victim_inserts", run.stats.victim_inserts)
        .u64("victim_insert_failures", run.stats.victim_insert_failures)
        .u64("victim_evictions", run.stats.victim_evictions)
        .u64("victim_overflow_drops", run.stats.victim_overflow_drops)
        .u64("admitted_bytes", run.stats.admitted_bytes)
        .u64(
            "admitted_compressed_bytes",
            run.stats.admitted_compressed_bytes,
        )
        .u64("resident_bytes", run.occupancy.resident_bytes)
        .u64("logical_bytes", run.occupancy.logical_bytes)
        .u64("entries", run.occupancy.entries)
        .u64("victim_bytes", run.occupancy.victim_bytes)
        .u64("victim_entries", run.occupancy.victim_entries);
    w.finish()
}

fn kv_config(org: KvOrgKind, dist: &str) -> KvConfig {
    let mut cfg = KvConfig::new(org, RequestProfile::by_name(dist).expect("preset profile"));
    cfg.budget = 256 * 1024;
    cfg.warmup = 5_000;
    cfg.requests = 15_000;
    cfg
}

/// Pins the kv tier the same way: 3 organizations x 3 request profiles,
/// every counter byte-for-byte. The kv tier shares the BDI kernel with
/// the LLC, so a kernel change that slips past the LLC goldens (e.g. one
/// that only shifts sizes for the kv chunk-synthesis pattern) still
/// trips here.
#[test]
fn kv_counters_match_committed_goldens() {
    let update = std::env::var_os("BV_UPDATE_GOLDENS").is_some();
    let mut failures = Vec::new();
    for dist in RequestProfile::NAMES {
        for org in KvOrgKind::ALL {
            let run = run_kv(&kv_config(org, dist));
            let got = kv_snapshot(&run);
            let dir = golden_dir();
            let path = dir.join(format!("kv.{dist}.{}.json", org.name()));
            if update {
                std::fs::create_dir_all(&dir).expect("create goldens dir");
                std::fs::write(&path, format!("{got}\n")).expect("write golden");
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden {} ({e}); regenerate with BV_UPDATE_GOLDENS=1",
                    path.display()
                )
            });
            if want.trim_end() != got {
                failures.push(format!(
                    "kv.{dist}.{}:\n{}",
                    org.name(),
                    describe_mismatch(want.trim_end(), &got)
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} kv snapshot(s) diverged from committed goldens \
         (BV_UPDATE_GOLDENS=1 to regenerate after an intentional change):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// A diverged snapshot must name each drifted counter with both values —
/// never dump two JSON blobs for the reader to eyeball.
#[test]
fn mismatch_reports_each_differing_counter() {
    let want = r#"{"a":1,"b":2,"s":"x","arr":[1,2]}"#;
    let got = r#"{"a":1,"b":3,"c":4,"arr":[1,5]}"#;
    let msg = describe_mismatch(want, got);
    assert!(msg.contains("b: expected 2, actual 3"), "{msg}");
    assert!(msg.contains("c: expected <missing>, actual 4"), "{msg}");
    assert!(msg.contains("s: expected \"x\", actual <missing>"), "{msg}");
    assert!(msg.contains("arr: expected [1, 2], actual [1, 5]"), "{msg}");
    assert!(!msg.contains("a:"), "unchanged counters stay silent: {msg}");
}

/// The snapshot function itself must be stable: identical runs serialize
/// to identical bytes (no map iteration order, no float formatting drift).
#[test]
fn snapshot_is_deterministic() {
    let registry = TraceRegistry::paper_default();
    let trace = registry.get("specint.mcf.07").expect("trace in registry");
    let run = || {
        System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &trace.workload,
            50_000,
            50_000,
        )
    };
    assert_eq!(snapshot(&run()), snapshot(&run()));
}
