//! Property tests for the kv tier's two structural guarantees, checked
//! after **every** operation of randomized request mixtures rather than
//! only at the end of canned streams:
//!
//! 1. **Baseline mirror** — the base-victim tier's baseline area holds
//!    exactly the keys, in exactly the recency order, of an uncompressed
//!    tier fed the same requests; its base hits and (misses + victim
//!    hits) match the uncompressed tier's hits and misses one-for-one.
//! 2. **Byte budget** — no organization's physical occupancy ever
//!    exceeds its budget, not even transiently between an admission and
//!    the evictions it forces.
//!
//! The mixtures are deliberately nastier than the preset profiles: tiny
//! keyspaces that force constant eviction, values spanning 1 byte to
//! larger-than-budget (exercising the bypass path), and per-key
//! compressibility from incompressible to 32x.

use base_victim::kvcache::{
    run_kv, BaseVictimKv, CompressedKv, KvConfig, KvOrgKind, UncompressedKv, ValueMeta,
};
use base_victim::trace::request::{RequestProfile, SplitMix64};

const BUDGET: u64 = 64 * 1024;
const OPS_PER_SEED: u64 = 4_000;
const SEEDS: [u64; 4] = [1, 42, 0xdead_beef, 0x5eed_5eed_5eed_5eed];

/// Deterministic per-key value shape: sizes from 1 byte up past the
/// budget (bypass), compressed size anywhere from `bytes/32` to `bytes`.
fn meta_for(key: u64, budget: u64) -> ValueMeta {
    let mut rng = SplitMix64::new(key ^ 0xfeed_face_cafe_f00d);
    let bytes = match rng.below(100) {
        0 => budget + 1 + rng.below(budget), // larger than the whole tier
        1..=9 => 1 + rng.below(63),          // tiny
        _ => 64 + rng.below(8 * 1024),       // typical object
    };
    let compressed = (bytes / (1 + rng.below(32))).max(1).min(bytes);
    ValueMeta::new(bytes as u32, compressed as u32)
}

/// One randomized request: 70% gets, 30% puts, keys Zipf-ish by nesting
/// `below` so low keys are much hotter than the tail.
fn next_request(rng: &mut SplitMix64, keyspace: u64) -> (bool, u64) {
    let is_get = rng.below(10) < 7;
    let bound = 1 + rng.below(keyspace);
    (is_get, rng.below(bound))
}

#[test]
fn fuzzed_mixtures_uphold_the_baseline_mirror() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let mut bv: BaseVictimKv = BaseVictimKv::new(BUDGET, bv_events::NoEventSink);
        let mut unc: UncompressedKv = UncompressedKv::new(BUDGET, bv_events::NoEventSink);
        for op in 0..OPS_PER_SEED {
            let (is_get, key) = next_request(&mut rng, 512);
            if is_get {
                bv.get(key, || meta_for(key, BUDGET));
                unc.get(key, || meta_for(key, BUDGET));
            } else {
                bv.put(key, || meta_for(key, BUDGET));
                unc.put(key, || meta_for(key, BUDGET));
            }
            assert_eq!(
                bv.baseline_keys_mru(),
                unc.keys_mru(),
                "seed {seed}: baseline recency order diverged after op {op}"
            );
            assert_eq!(
                bv.stats().base_hits,
                unc.stats().base_hits,
                "seed {seed}: base hits diverged after op {op}"
            );
            assert_eq!(
                bv.stats().misses + bv.stats().victim_hits,
                unc.stats().misses,
                "seed {seed}: miss accounting diverged after op {op}"
            );
            bv.check_invariants()
                .unwrap_or_else(|v| panic!("seed {seed}, op {op}: {v}"));
        }
        assert!(
            bv.stats().hits() >= unc.stats().hits(),
            "seed {seed}: base-victim lost hits vs uncompressed"
        );
    }
}

#[test]
fn fuzzed_mixtures_never_exceed_the_byte_budget() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut unc: UncompressedKv = UncompressedKv::new(BUDGET, bv_events::NoEventSink);
        let mut comp: CompressedKv = CompressedKv::new(BUDGET, bv_events::NoEventSink);
        let mut bv: BaseVictimKv = BaseVictimKv::new(BUDGET, bv_events::NoEventSink);
        for op in 0..OPS_PER_SEED {
            let (is_get, key) = next_request(&mut rng, 256);
            for occ in [
                {
                    if is_get {
                        unc.get(key, || meta_for(key, BUDGET));
                    } else {
                        unc.put(key, || meta_for(key, BUDGET));
                    }
                    unc.occupancy()
                },
                {
                    if is_get {
                        comp.get(key, || meta_for(key, BUDGET));
                    } else {
                        comp.put(key, || meta_for(key, BUDGET));
                    }
                    comp.occupancy()
                },
                {
                    if is_get {
                        bv.get(key, || meta_for(key, BUDGET));
                    } else {
                        bv.put(key, || meta_for(key, BUDGET));
                    }
                    bv.occupancy()
                },
            ] {
                assert!(
                    occ.resident_bytes <= BUDGET,
                    "seed {seed}, op {op}: {} resident bytes > {BUDGET} budget",
                    occ.resident_bytes
                );
            }
        }
        // The oversized values must have gone through the bypass path,
        // not been force-fit.
        assert!(
            bv.stats().bypassed > 0,
            "seed {seed}: bypass never exercised"
        );
        assert_eq!(bv.stats().bypassed, unc.stats().bypassed, "seed {seed}");
    }
}

/// The end-to-end guarantee on the preset profiles across budgets: the
/// base-victim tier's hit count is never below the uncompressed tier's,
/// and never above the idealized always-compressed tier's.
#[test]
fn preset_profiles_order_the_organizations() {
    for dist in RequestProfile::NAMES {
        for budget_kib in [64u64, 256] {
            let run = |org| {
                let mut cfg = KvConfig::new(org, RequestProfile::by_name(dist).expect("preset"));
                cfg.budget = budget_kib * 1024;
                cfg.warmup = 2_000;
                cfg.requests = 8_000;
                run_kv(&cfg)
            };
            let unc = run(KvOrgKind::Uncompressed);
            let comp = run(KvOrgKind::Compressed);
            let bv = run(KvOrgKind::BaseVictim);
            assert!(
                bv.stats.hits() >= unc.stats.hits(),
                "{dist}@{budget_kib}KiB: bv {} < unc {}",
                bv.stats.hits(),
                unc.stats.hits()
            );
            assert_eq!(
                bv.stats.base_hits,
                unc.stats.hits(),
                "{dist}@{budget_kib}KiB: baseline is not a mirror"
            );
            assert!(
                bv.stats.hits() <= comp.stats.hits(),
                "{dist}@{budget_kib}KiB: bv {} beat always-compress {}",
                bv.stats.hits(),
                comp.stats.hits()
            );
        }
    }
}
