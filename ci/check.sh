#!/usr/bin/env bash
# Repository quality gate: formatting, lints, build, the full test suite
# (including the orchestration determinism/resume tests, which run as part
# of the default `cargo test`), and the perf-regression gate (`bvsim bench
# --quick` against the committed BENCH.json baseline).
#
# Usage: ci/check.sh [--quick]
#   --quick   skip workspace tests and the smoke runs, but still build
#             release and run the bench gate so a hot-path layout
#             regression fails fast on every run
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

# One retry for the perf gate: on a shared host a background burst can
# swallow an entire timing window and read as a regression. A real
# regression reproduces on the immediate rerun; a burst almost never does.
bench_gate() {
    ./target/release/bvsim bench --quick \
        --out target/BENCH.quick.json --baseline BENCH.json --max-regress 20 \
        || ./target/release/bvsim bench --quick \
            --out target/BENCH.quick.json --baseline BENCH.json --max-regress 20
}

if [[ "${1:-}" == "--quick" ]]; then
    echo "quick mode: skipping doc/tests/smokes, keeping the bench gate"
    echo "== cargo build --release =="
    cargo build --release
    echo "== bvsim bench --quick (perf gate vs committed BENCH.json) =="
    bench_gate
    exit 0
fi

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== bvsim bench --quick (perf gate vs committed BENCH.json) =="
bench_gate

echo "== telemetry smoke (run --telemetry, then report) =="
./target/release/bvsim --trace specint.mcf.07 --llc base-victim \
    --warmup 50000 --insts 200000 \
    --telemetry target/telemetry-smoke.jsonl --epoch 50000 >/dev/null
./target/release/bvsim report target/telemetry-smoke.jsonl >/dev/null

echo "== events smoke (trace capture, then the divergence auditor) =="
./target/release/bvsim trace --trace specint.mcf.07 --llc-mb 1 --ways 8 \
    --warmup 100000 --budget 200000 --kinds eviction,victim-hit \
    --capacity 4096 --out target/events-smoke.jsonl >/dev/null
# A clean audit must pass; an injected fault must be caught (both exit 0).
./target/release/bvsim trace --audit --ops 5000 >/dev/null
./target/release/bvsim trace --audit --ops 5000 --inject 800 >/dev/null

echo "== kv smoke (org sweep, then the baseline-mirror auditor) =="
./target/release/bvsim kv --sweep --warmup 10000 --requests 40000 \
    --budget-kib 256 >/dev/null
# Same convention as the LLC auditor: clean run and self-test both exit 0.
./target/release/bvsim kv --lockstep --requests 20000 --budget-kib 256 >/dev/null
./target/release/bvsim kv --lockstep --requests 20000 --budget-kib 256 \
    --inject 5000 >/dev/null

echo "== fuzz smoke (fixed-seed campaign, inject self-test, corpus replay) =="
# A fixed seed keeps CI deterministic; any failure exits nonzero with a
# minimized reproducer on stdout.
./target/release/bvsim fuzz --cases 25 --seed 1 >/dev/null
# Self-test: plant a fault in each domain's auditor and require the
# campaign machinery to detect it and shrink the witness. An undetected
# injected fault exits nonzero — the fuzzer finding nothing must mean
# there is nothing, not that it cannot see.
./target/release/bvsim fuzz --inject >/dev/null
# Every committed reproducer must replay green (fixed bugs stay fixed,
# injected faults stay detected).
for repro in tests/corpus/*.bvfuzz.json; do
    ./target/release/bvsim fuzz --replay "$repro" >/dev/null
done

echo "== serve smoke (daemon, worker kill, dedup, metrics, restart recovery) =="
# A live bvsim-serve-v1 daemon on an ephemeral port: arm a worker crash,
# submit a tiny sweep, and require completion with zero lost and zero
# duplicate simulations. Scrape the live /metrics endpoint and require the
# counters to agree with what just happened. Then restart the daemon
# against the same journal and require the identical grid to re-simulate
# nothing.
SERVE_DIR=$(mktemp -d)
trap 'rm -rf "$SERVE_DIR"' EXIT
serve_grid() {
    ./target/release/bvsim submit --addr "$1" \
        --traces specint.mcf.07,client.octane.00 \
        --llcs uncompressed,base-victim \
        --warmup 1000 --insts 2000 --out "$2"
}
./target/release/bvsim serve --addr 127.0.0.1:0 --workers 2 \
    --metrics-port 0 \
    --journal "$SERVE_DIR/journal" --port-file "$SERVE_DIR/serve.addr" \
    >"$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -f "$SERVE_DIR/serve.addr.metrics" ]] && break
    sleep 0.1
done
ADDR=$(cat "$SERVE_DIR/serve.addr")
METRICS_ADDR=$(cat "$SERVE_DIR/serve.addr.metrics")
# Kill a worker mid-sweep: the monitor must re-queue its job and spawn a
# replacement, and the sweep must still complete.
./target/release/bvsim ctl --addr "$ADDR" --kill-worker 0 >/dev/null
serve_grid "$ADDR" "$SERVE_DIR/rows.jsonl" >/dev/null
ROWS=$(wc -l <"$SERVE_DIR/rows.jsonl")
JOURNALED=$(wc -l <"$SERVE_DIR/journal/runs.jsonl")
if [[ "$ROWS" != 4 || "$JOURNALED" != 4 ]]; then
    echo "serve smoke: expected 4 rows + 4 journal lines after worker kill," \
         "got $ROWS rows, $JOURNALED journal lines" >&2
    exit 1
fi
# Capture before grep -q: an early pipe close would SIGPIPE the client.
STATUS=$(./target/release/bvsim ctl --addr "$ADDR" --status)
grep -q "1 worker crash(es)" <<<"$STATUS" \
    || { echo "serve smoke: worker crash not recorded in status" >&2; exit 1; }
# Scrape the Prometheus endpoint on the live daemon over plain HTTP
# (bash /dev/tcp, so CI needs no curl): the sweep that just ran must
# show up as completed jobs, and the kill-worker drill as a crash.
exec 3<>"/dev/tcp/${METRICS_ADDR%:*}/${METRICS_ADDR##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
SCRAPE=$(cat <&3)
exec 3<&- 3>&-
grep -q '^jobs_completed_total{source="simulated"} [1-9]' <<<"$SCRAPE" \
    || { echo "serve smoke: /metrics shows no completed jobs" >&2; exit 1; }
grep -q '^worker_crashes_total [1-9]' <<<"$SCRAPE" \
    || { echo "serve smoke: /metrics missed the worker crash" >&2; exit 1; }
# The live dashboard renders one frame from the same daemon.
TOP=$(./target/release/bvsim top --addr "$ADDR" --once)
grep -q "1 crash(es)" <<<"$TOP" \
    || { echo "serve smoke: bvsim top missed the worker crash" >&2; exit 1; }
./target/release/bvsim ctl --addr "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
# Restart on the same journal: the grid must be served entirely from disk.
./target/release/bvsim serve --addr 127.0.0.1:0 --workers 2 \
    --journal "$SERVE_DIR/journal" --port-file "$SERVE_DIR/serve2.addr" \
    >>"$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -f "$SERVE_DIR/serve2.addr" ]] && break
    sleep 0.1
done
ADDR=$(cat "$SERVE_DIR/serve2.addr")
RESUBMIT=$(serve_grid "$ADDR" "$SERVE_DIR/rows2.jsonl")
grep -q "4 job(s): 0 fresh, 4 journaled" <<<"$RESUBMIT" \
    || { echo "serve smoke: restart re-simulated journaled work" >&2; exit 1; }
./target/release/bvsim ctl --addr "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"
if [[ "$(wc -l <"$SERVE_DIR/journal/runs.jsonl")" != 4 ]]; then
    echo "serve smoke: restart appended duplicate journal lines" >&2
    exit 1
fi

echo "All checks passed."
