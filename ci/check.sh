#!/usr/bin/env bash
# Repository quality gate: formatting, lints, build, the full test suite
# (including the orchestration determinism/resume tests, which run as part
# of the default `cargo test`), and the perf-regression gate (`bvsim bench
# --quick` against the committed BENCH.json baseline).
#
# Usage: ci/check.sh [--quick]
#   --quick   skip workspace tests and the smoke runs, but still build
#             release and run the bench gate so a hot-path layout
#             regression fails fast on every run
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

# One retry for the perf gate: on a shared host a background burst can
# swallow an entire timing window and read as a regression. A real
# regression reproduces on the immediate rerun; a burst almost never does.
bench_gate() {
    ./target/release/bvsim bench --quick \
        --out target/BENCH.quick.json --baseline BENCH.json --max-regress 20 \
        || ./target/release/bvsim bench --quick \
            --out target/BENCH.quick.json --baseline BENCH.json --max-regress 20
}

if [[ "${1:-}" == "--quick" ]]; then
    echo "quick mode: skipping doc/tests/smokes, keeping the bench gate"
    echo "== cargo build --release =="
    cargo build --release
    echo "== bvsim bench --quick (perf gate vs committed BENCH.json) =="
    bench_gate
    exit 0
fi

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== bvsim bench --quick (perf gate vs committed BENCH.json) =="
bench_gate

echo "== telemetry smoke (run --telemetry, then report) =="
./target/release/bvsim --trace specint.mcf.07 --llc base-victim \
    --warmup 50000 --insts 200000 \
    --telemetry target/telemetry-smoke.jsonl --epoch 50000 >/dev/null
./target/release/bvsim report target/telemetry-smoke.jsonl >/dev/null

echo "== events smoke (trace capture, then the divergence auditor) =="
./target/release/bvsim trace --trace specint.mcf.07 --llc-mb 1 --ways 8 \
    --warmup 100000 --budget 200000 --kinds eviction,victim-hit \
    --capacity 4096 --out target/events-smoke.jsonl >/dev/null
# A clean audit must pass; an injected fault must be caught (both exit 0).
./target/release/bvsim trace --audit --ops 5000 >/dev/null
./target/release/bvsim trace --audit --ops 5000 --inject 800 >/dev/null

echo "== kv smoke (org sweep, then the baseline-mirror auditor) =="
./target/release/bvsim kv --sweep --warmup 10000 --requests 40000 \
    --budget-kib 256 >/dev/null
# Same convention as the LLC auditor: clean run and self-test both exit 0.
./target/release/bvsim kv --lockstep --requests 20000 --budget-kib 256 >/dev/null
./target/release/bvsim kv --lockstep --requests 20000 --budget-kib 256 \
    --inject 5000 >/dev/null

echo "== fuzz smoke (fixed-seed campaign, inject self-test, corpus replay) =="
# A fixed seed keeps CI deterministic; any failure exits nonzero with a
# minimized reproducer on stdout.
./target/release/bvsim fuzz --cases 25 --seed 1 >/dev/null
# Self-test: plant a fault in each domain's auditor and require the
# campaign machinery to detect it and shrink the witness. An undetected
# injected fault exits nonzero — the fuzzer finding nothing must mean
# there is nothing, not that it cannot see.
./target/release/bvsim fuzz --inject >/dev/null
# Every committed reproducer must replay green (fixed bugs stay fixed,
# injected faults stay detected).
for repro in tests/corpus/*.bvfuzz.json; do
    ./target/release/bvsim fuzz --replay "$repro" >/dev/null
done

echo "All checks passed."
